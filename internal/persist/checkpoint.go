package persist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sourcelda/internal/core"
)

// Training checkpoints use a binary format rather than the JSON of the other
// artifacts: a checkpoint is written every few sweeps on the training hot
// path and is dominated by one int32 per corpus token, so it is encoded as
// little-endian slabs framed by a magic string, a format version, an
// explicit payload length, and a CRC-32 of the payload. The frame makes the
// failure modes of crash-time files first-class: a truncated write fails the
// length check, a torn or bit-flipped write fails the checksum, and a file
// from a future format version is refused instead of misread.
const (
	checkpointMagic   = "SLDACKPT"
	CheckpointVersion = 1

	// maxCheckpointPayload bounds the decoder's allocation when reading an
	// attacker-supplied or corrupted length prefix (16 GiB is far beyond any
	// real chain state, which is ~4 bytes per corpus token).
	maxCheckpointPayload = 16 << 30
)

// SaveCheckpoint writes ck to w in the framed binary checkpoint format.
func SaveCheckpoint(w io.Writer, ck *core.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("persist: nil checkpoint")
	}
	return WriteFrame(w, checkpointMagic, CheckpointVersion, appendCheckpointPayload(nil, ck))
}

// EncodeCheckpoint returns ck serialized as one complete checkpoint frame —
// the same bytes SaveCheckpoint writes — for callers that embed checkpoints
// inside other messages (the dtrain workers ship their sync-boundary state
// this way).
func EncodeCheckpoint(ck *core.Checkpoint) ([]byte, error) {
	if ck == nil {
		return nil, fmt.Errorf("persist: nil checkpoint")
	}
	payload := appendCheckpointPayload(nil, ck)
	return AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)+4), checkpointMagic, CheckpointVersion, payload), nil
}

func appendCheckpointPayload(b []byte, ck *core.Checkpoint) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Sweep))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Seed))
	b = binary.LittleEndian.AppendUint64(b, ck.OptionsDigest)
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.NumFreeTopics))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.NumSourceTopics))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.VocabSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.NumDocs))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.DocLengths)))
	for _, n := range ck.DocLengths {
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.Z)))
	for _, t := range ck.Z {
		b = binary.LittleEndian.AppendUint32(b, uint32(t))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.LambdaWeights)))
	for _, w := range ck.LambdaWeights {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.Disabled)))
	for _, d := range ck.Disabled {
		if d {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.StreamPos)))
	for _, p := range ck.StreamPos {
		b = binary.LittleEndian.AppendUint64(b, p)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.LikelihoodTrace)))
	for _, ll := range ck.LikelihoodTrace {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ll))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(ck.IterationTimes)))
	for _, d := range ck.IterationTimes {
		b = binary.LittleEndian.AppendUint64(b, uint64(d.Nanoseconds()))
	}
	return b
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, verifying the
// magic, format version, payload length and CRC-32 before decoding. A
// truncated, tampered or foreign file returns an error; the decoder never
// panics on malformed input (fuzzed). Structural validation against the
// corpus, source and options the checkpoint belongs to happens in
// core.Restore — this layer only guarantees the bytes decode to the shape
// they were encoded from.
func LoadCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	version, payload, err := ReadFrame(r, checkpointMagic, maxCheckpointPayload, "checkpoint file")
	if err != nil {
		return nil, err
	}
	if version != CheckpointVersion {
		return nil, fmt.Errorf("persist: unsupported checkpoint version %d (this build reads version %d)", version, CheckpointVersion)
	}
	return decodeCheckpointPayload(payload)
}

// payloadCursor decodes fixed-width fields from a checkpoint payload with
// bounds checking: any read past the end flags truncation instead of
// panicking, and slice counts are validated against the bytes actually
// remaining before allocation.
type payloadCursor struct {
	b   []byte
	off int
	err error
}

func (c *payloadCursor) u64(what string) uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = fmt.Errorf("persist: checkpoint payload truncated at %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *payloadCursor) u32(what string) uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = fmt.Errorf("persist: checkpoint payload truncated at %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

// count reads a slice length and checks that width bytes per element still
// fit in the remaining payload, so a corrupt count cannot force a huge
// allocation or a tail of zero-filled elements.
func (c *payloadCursor) count(what string, width int) int {
	n := c.u64(what)
	if c.err != nil {
		return 0
	}
	if remaining := uint64(len(c.b) - c.off); n > remaining/uint64(width) {
		c.err = fmt.Errorf("persist: checkpoint %s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

// intField narrows a u64 payload field back to a non-negative int.
func (c *payloadCursor) intField(what string) int {
	v := c.u64(what)
	if c.err != nil {
		return 0
	}
	if v > math.MaxInt64/2 {
		c.err = fmt.Errorf("persist: checkpoint %s value %d out of range", what, v)
		return 0
	}
	return int(v)
}

func decodeCheckpointPayload(payload []byte) (*core.Checkpoint, error) {
	c := &payloadCursor{b: payload}
	ck := &core.Checkpoint{}
	ck.Sweep = c.intField("sweep")
	ck.Seed = int64(c.u64("seed"))
	ck.OptionsDigest = c.u64("options digest")
	ck.NumFreeTopics = c.intField("free-topic count")
	ck.NumSourceTopics = c.intField("source-topic count")
	ck.VocabSize = c.intField("vocabulary size")
	ck.NumDocs = c.intField("document count")

	if n := c.count("document lengths", 4); c.err == nil {
		ck.DocLengths = make([]int32, n)
		for i := range ck.DocLengths {
			ck.DocLengths[i] = int32(c.u32("document length"))
		}
	}
	if n := c.count("assignments", 4); c.err == nil {
		ck.Z = make([]int32, n)
		for i := range ck.Z {
			ck.Z[i] = int32(c.u32("assignment"))
		}
	}
	if n := c.count("λ weights", 8); c.err == nil {
		ck.LambdaWeights = make([]float64, n)
		for i := range ck.LambdaWeights {
			ck.LambdaWeights[i] = math.Float64frombits(c.u64("λ weight"))
		}
	}
	if n := c.count("disabled flags", 1); c.err == nil {
		ck.Disabled = make([]bool, n)
		for i := range ck.Disabled {
			if c.off >= len(c.b) {
				c.err = fmt.Errorf("persist: checkpoint payload truncated at disabled flag")
				break
			}
			ck.Disabled[i] = c.b[c.off] != 0
			c.off++
		}
	}
	if n := c.count("stream positions", 8); c.err == nil {
		ck.StreamPos = make([]uint64, n)
		for i := range ck.StreamPos {
			ck.StreamPos[i] = c.u64("stream position")
		}
	}
	if n := c.count("likelihood trace", 8); c.err == nil {
		ck.LikelihoodTrace = make([]float64, n)
		for i := range ck.LikelihoodTrace {
			ck.LikelihoodTrace[i] = math.Float64frombits(c.u64("likelihood entry"))
		}
	}
	if n := c.count("iteration times", 8); c.err == nil {
		ck.IterationTimes = make([]time.Duration, n)
		for i := range ck.IterationTimes {
			ck.IterationTimes[i] = time.Duration(c.u64("iteration time"))
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("persist: checkpoint payload has %d trailing bytes", len(c.b)-c.off)
	}
	return ck, nil
}

// checkpointFilePattern names checkpoint files by sweep so retention and
// latest-selection order lexically and numerically alike.
const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
)

func checkpointFileName(sweep int) string {
	return fmt.Sprintf("%s%010d%s", checkpointPrefix, sweep, checkpointSuffix)
}

// checkpointSweep parses the sweep index out of a checkpoint file name,
// returning -1 for names that don't match the pattern (temp files, foreign
// files living in the same directory).
func checkpointSweep(name string) int {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return -1
	}
	n, err := strconv.Atoi(name[len(checkpointPrefix) : len(name)-len(checkpointSuffix)])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// CheckpointWriter persists a training run's periodic checkpoints into a
// directory with crash-safe writes and bounded retention. Each Write lands
// as checkpoint-<sweep>.ckpt via a temp file in the same directory, an
// fsync, and an atomic rename — a crash mid-write can leave a stray temp
// file but never a half-written checkpoint under the final name — and then
// prunes all but the newest retain checkpoints.
type CheckpointWriter struct {
	dir    string
	retain int
}

// DefaultCheckpointRetain is how many most-recent checkpoints a writer keeps
// when retention is unspecified.
const DefaultCheckpointRetain = 3

// NewCheckpointWriter creates dir if needed and returns a writer that keeps
// the retain most recent checkpoints (0 means DefaultCheckpointRetain; a
// negative value keeps every checkpoint).
func NewCheckpointWriter(dir string, retain int) (*CheckpointWriter, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: checkpoint directory must be non-empty")
	}
	if retain == 0 {
		retain = DefaultCheckpointRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create checkpoint directory: %w", err)
	}
	return &CheckpointWriter{dir: dir, retain: retain}, nil
}

// Write persists ck and returns the final checkpoint path. Retention
// pruning failures are ignored (the new checkpoint is already durable);
// write, sync or rename failures are returned.
func (cw *CheckpointWriter) Write(ck *core.Checkpoint) (string, error) {
	if ck == nil {
		return "", fmt.Errorf("persist: nil checkpoint")
	}
	final := filepath.Join(cw.dir, checkpointFileName(ck.Sweep))
	tmp, err := os.CreateTemp(cw.dir, ".tmp-checkpoint-*")
	if err != nil {
		return "", fmt.Errorf("persist: create checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := SaveCheckpoint(tmp, ck); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	// The data must be on disk before the rename makes it visible under the
	// final name, or a crash could expose an empty-but-well-named file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("persist: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("persist: close checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("persist: publish checkpoint: %w", err)
	}
	cw.prune()
	return final, nil
}

// prune removes all but the newest retain checkpoints (by sweep index).
func (cw *CheckpointWriter) prune() {
	if cw.retain < 0 {
		return
	}
	paths, err := ListCheckpoints(cw.dir)
	if err != nil {
		return
	}
	for _, p := range paths[:max(0, len(paths)-cw.retain)] {
		os.Remove(p)
	}
}

// ListCheckpoints returns the checkpoint files in dir ordered oldest to
// newest by sweep index. Temp files and foreign files are ignored.
func ListCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint directory: %w", err)
	}
	type entry struct {
		sweep int
		path  string
	}
	var found []entry
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s := checkpointSweep(e.Name()); s >= 0 {
			found = append(found, entry{sweep: s, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].sweep < found[j].sweep })
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = f.path
	}
	return out, nil
}

// LatestCheckpoint returns the newest checkpoint file in dir, or an error
// if the directory holds none — the crash-recovery entry point: point it at
// a dead run's checkpoint directory and resume from what it returns.
func LatestCheckpoint(dir string) (string, error) {
	paths, err := ListCheckpoints(dir)
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("persist: no checkpoints in %s", dir)
	}
	return paths[len(paths)-1], nil
}

// FindCheckpoint reports the path of the checkpoint for exactly the given
// sweep, if dir holds one. Distributed-training recovery needs the exact
// sync-boundary checkpoint rather than the newest: a worker may have
// checkpointed a later boundary and died before its delta reached the
// coordinator, in which case the newest local state is ahead of the global
// chain.
func FindCheckpoint(dir string, sweep int) (string, bool) {
	path := filepath.Join(dir, checkpointFileName(sweep))
	info, err := os.Stat(path)
	if err != nil || info.IsDir() {
		return "", false
	}
	return path, true
}

// LoadCheckpointFile loads a checkpoint from path. A directory path selects
// its newest checkpoint, so callers can resume from either an exact file or
// a run's checkpoint directory.
func LoadCheckpointFile(path string) (*core.Checkpoint, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("persist: stat checkpoint: %w", err)
	}
	if info.IsDir() {
		path, err = LatestCheckpoint(path)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: open checkpoint: %w", err)
	}
	defer f.Close()
	ck, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return ck, nil
}
