//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path; on non-unix builds
// LoadBundleMapped silently degrades to the eager loader.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and private. The returned release
// function unmaps; the file descriptor itself can be closed immediately after
// mapping (the mapping keeps the pages alive).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size > int64(maxInt) {
		return nil, nil, fmt.Errorf("persist: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
