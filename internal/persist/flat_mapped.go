package persist

import (
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

const maxInt = math.MaxInt

// LoadBundleMapped opens a flat bundle with the zero-copy path: the file is
// memory-mapped read-only, the header and every small section are validated
// and checksummed (so truncations and metadata corruption are rejected up
// front), and the cond slab is handed out as a []float64 view of the mapped
// pages without ever being read. Load time and resident cost are therefore
// independent of model size — a cold model occupies only its metadata — and
// the kernel shares the slab's pages across every process mapping the same
// file.
//
// The returned bundle has Mapped == true and MUST be Closed exactly once,
// after the last reader of Cond is gone; the facade ties this to the
// inference session's drain. On platforms without mmap, on big-endian hosts,
// or if the mapping fails, LoadBundleMapped falls back to the eager
// fully-verified LoadBundleFlat (Mapped == false, Close is a no-op), so
// callers get the same bundle either way.
//
// The trade for O(1) load is that the cond slab's checksum is not verified
// here — use Verify (or LoadBundleFlat) when integrity of the slab itself
// must be proven, e.g. after an unclean copy.
func LoadBundleMapped(path string) (*FlatBundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !mmapSupported || !hostLittleEndian {
		return LoadBundleFlat(f)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mmapFile(f, fi.Size())
	if err != nil {
		// Mapping can fail on exotic filesystems; the eager path still works.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, fmt.Errorf("persist: mmap failed (%v) and rewind failed: %w", err, serr)
		}
		return LoadBundleFlat(f)
	}
	fb, err := decodeFlat(data, false)
	if err != nil {
		unmap()
		return nil, err
	}
	if len(fb.Cond) > 0 && !sameMemory(data, fb.Cond) {
		// The cast fell back to a heap copy (misaligned mapping — should not
		// happen for page-aligned maps, but be safe): the mapping is no
		// longer needed.
		unmap()
		return fb, nil
	}
	fb.Mapped = true
	fb.unmap = unmap
	return fb, nil
}

// sameMemory reports whether the float64 slice aliases the byte buffer.
func sameMemory(data []byte, cond []float64) bool {
	if len(data) == 0 || len(cond) == 0 {
		return false
	}
	start := uintptr(unsafe.Pointer(&data[0]))
	end := start + uintptr(len(data))
	p := uintptr(unsafe.Pointer(&cond[0]))
	return p >= start && p < end
}
