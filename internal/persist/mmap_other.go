//go:build !unix

package persist

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("persist: mmap not supported on this platform")
}
