package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The CRC frame is the one envelope every binary artifact and wire message
// in the repo shares: an 8-byte magic string, a little-endian uint32 format
// version, an explicit uint64 payload length, the payload, and a CRC-32
// (IEEE) of the payload. Checkpoint files use it on disk; the distributed
// training protocol (internal/dtrain) uses it per message over TCP or
// in-process pipes. The frame makes every corruption mode first-class: a
// truncated stream fails the length read, a torn or bit-flipped payload
// fails the checksum, a foreign stream fails the magic, and a message from
// a future format version is refused instead of misread.

// frameHeaderSize is the byte length of a frame header with an 8-byte magic.
const frameHeaderSize = 8 + 4 + 8

// AppendFrame appends a complete frame (header, payload, checksum) to b and
// returns the extended slice. magic must be exactly 8 bytes.
func AppendFrame(b []byte, magic string, version uint32, payload []byte) []byte {
	if len(magic) != 8 {
		panic(fmt.Sprintf("persist: frame magic %q must be exactly 8 bytes", magic))
	}
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, version)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return b
}

// WriteFrame writes a complete frame to w. The frame is assembled in memory
// first and written with a single Write call, so writers multiplexed over
// one connection never interleave partial frames.
func WriteFrame(w io.Writer, magic string, version uint32, payload []byte) error {
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)+4), magic, version, payload)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("persist: write %s frame: %w", magic, err)
	}
	return nil
}

// ReadFrame reads one frame from r, verifying the magic, the payload length
// against maxPayload, and the CRC-32 before returning the format version and
// payload. what names the artifact in error messages ("checkpoint",
// "dtrain message"). The returned payload is freshly allocated and owned by
// the caller.
func ReadFrame(r io.Reader, magic string, maxPayload uint64, what string) (version uint32, payload []byte, err error) {
	if len(magic) != 8 {
		panic(fmt.Sprintf("persist: frame magic %q must be exactly 8 bytes", magic))
	}
	header := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, fmt.Errorf("persist: %s truncated reading header: %w", what, err)
	}
	if string(header[:8]) != magic {
		return 0, nil, fmt.Errorf("persist: not a %s (bad magic)", what)
	}
	version = binary.LittleEndian.Uint32(header[8:])
	payloadLen := binary.LittleEndian.Uint64(header[12:])
	if payloadLen > maxPayload {
		return 0, nil, fmt.Errorf("persist: %s payload length %d exceeds the %d-byte limit", what, payloadLen, maxPayload)
	}
	payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("persist: %s truncated reading %d-byte payload: %w", what, payloadLen, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("persist: %s truncated reading checksum: %w", what, err)
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload); want != got {
		return 0, nil, fmt.Errorf("persist: %s checksum mismatch (stored %#x, computed %#x): data is corrupt", what, want, got)
	}
	return version, payload, nil
}
