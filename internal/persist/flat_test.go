package persist

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

// flatSeedBytes builds the same tiny fitted fixture the bundle tests use and
// returns its flat encoding plus the inputs it was saved from. It takes no
// *testing.T so the fuzz harness can call it too.
func flatSeedBytes() ([]byte, []string, *knowledge.Source, *core.Result, error) {
	c := corpus.New()
	c.AddText("d1", "pencil pencil umpire", nil)
	c.AddText("d2", "ruler ruler baseball", nil)
	school := knowledge.NewArticleFromText("School",
		strings.Repeat("pencil ruler ", 10), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("umpire baseball ", 10), c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{school, ball})
	m, err := core.Fit(c, src, core.Options{
		LambdaMode: core.LambdaFixed, Lambda: 1, Iterations: 20, Seed: 1,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer m.Close()
	res := m.Result()
	var buf bytes.Buffer
	err = SaveBundleFlat(&buf, c.Vocab.Words(), src, res, flatTestMeta())
	return buf.Bytes(), c.Vocab.Words(), src, res, err
}

func flatTestMeta() *BundleMeta {
	return &BundleMeta{
		Name:        "school",
		Version:     "v7",
		ChainDigest: "00ff00ff00ff00ff",
		TrainedAt:   time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
	}
}

func mustFlatSeed(t *testing.T) ([]byte, []string, *knowledge.Source, *core.Result) {
	t.Helper()
	data, words, src, res, err := flatSeedBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data, words, src, res
}

// checkFlatAgainst asserts a loaded flat bundle reproduces the saved inputs
// exactly, down to the cond-slab bits core.NewFrozen would have built from
// the JSON path.
func checkFlatAgainst(t *testing.T, fb *FlatBundle, words []string, src *knowledge.Source, res *core.Result) {
	t.Helper()
	T, V := len(res.Phi), len(words)
	if fb.T != T || fb.V != V || fb.NumSourceArticles != src.Len() {
		t.Fatalf("dims T=%d V=%d S=%d, want %d %d %d", fb.T, fb.V, fb.NumSourceArticles, T, V, src.Len())
	}
	if fb.NumFreeTopics != res.NumFreeTopics || fb.Alpha != res.Alpha {
		t.Fatalf("free=%d alpha=%v, want %d %v", fb.NumFreeTopics, fb.Alpha, res.NumFreeTopics, res.Alpha)
	}
	for tt := range res.Labels {
		if fb.Labels[tt] != res.Labels[tt] || fb.SourceIndices[tt] != res.SourceIndices[tt] ||
			fb.TokenCounts[tt] != res.TokenCounts[tt] || fb.DocFrequencies[tt] != res.DocFrequencies[tt] {
			t.Fatalf("topic %d metadata changed in round trip", tt)
		}
	}
	if fb.Vocab.Size() != V {
		t.Fatalf("vocab size %d, want %d", fb.Vocab.Size(), V)
	}
	for id, w := range words {
		if fb.Vocab.Word(id) != w {
			t.Fatal("vocabulary order changed")
		}
	}
	frozen, err := core.NewFrozen(res)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < V; w++ {
		want := frozen.Cond(w)
		got := fb.Cond[w*T : (w+1)*T]
		for tt := range want {
			if math.Float64bits(got[tt]) != math.Float64bits(want[tt]) {
				t.Fatalf("cond[%d,%d] not bit-identical to the NewFrozen slab", w, tt)
			}
		}
	}
}

func TestFlatBundleRoundTrip(t *testing.T) {
	data, words, src, res := mustFlatSeed(t)
	if !IsFlatBundle(data) {
		t.Fatal("saved flat bundle does not start with the magic")
	}
	fb, err := LoadBundleFlat(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	checkFlatAgainst(t, fb, words, src, res)
	want := flatTestMeta()
	if fb.Meta == nil {
		t.Fatal("meta lost in round trip")
	}
	if fb.Meta.Name != want.Name || fb.Meta.Version != want.Version ||
		fb.Meta.ChainDigest != want.ChainDigest || !fb.Meta.TrainedAt.Equal(want.TrainedAt) {
		t.Fatalf("meta changed in round trip: %+v", fb.Meta)
	}
	if fb.Mapped {
		t.Fatal("eager load reported Mapped")
	}
	if err := fb.Verify(); err != nil {
		t.Fatalf("Verify on a pristine bundle: %v", err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
	if err := fb.Verify(); err == nil {
		t.Fatal("Verify succeeded after Close")
	}
}

func TestSaveBundleFlatDeterministic(t *testing.T) {
	a, _, _, _ := mustFlatSeed(t)
	b, _, _, _ := mustFlatSeed(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same model produced different bytes")
	}
	// An all-zero meta is normalized to "no meta", so both spellings encode
	// identically.
	_, words, src, res, err := flatSeedBytes()
	if err != nil {
		t.Fatal(err)
	}
	var withNil, withZero bytes.Buffer
	if err := SaveBundleFlat(&withNil, words, src, res, nil); err != nil {
		t.Fatal(err)
	}
	if err := SaveBundleFlat(&withZero, words, src, res, &BundleMeta{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withNil.Bytes(), withZero.Bytes()) {
		t.Fatal("nil meta and zero meta encode differently")
	}
	fb, err := LoadBundleFlat(bytes.NewReader(withNil.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Meta != nil {
		t.Fatal("meta materialized from a bundle saved without one")
	}
}

func TestSaveBundleFlatRejectsInconsistency(t *testing.T) {
	_, words, src, res, err := flatSeedBytes()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBundleFlat(&buf, words[:len(words)-1], src, res, nil); err == nil {
		t.Fatal("undersized vocabulary accepted")
	}
	if err := SaveBundleFlat(&buf, words, nil, res, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if err := SaveBundleFlat(&buf, words, src, nil, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// condRange reads the cond section's [offset, offset+length) out of a valid
// flat bundle's own section table.
func condRange(data []byte) (uint64, uint64) {
	le := binary.LittleEndian
	return le.Uint64(data[88+8:]), le.Uint64(data[88+16:])
}

// TestFlatBundleRejectsCorruption exhaustively flips every byte of a valid
// bundle (two patterns: one bit and all bits) and tries every truncation and
// a one-byte extension. The strict loader must reject all of them; the
// mapped-path decoder must reject everything outside the cond slab it
// deliberately leaves unread, and Verify must catch the rest.
func TestFlatBundleRejectsCorruption(t *testing.T) {
	data, _, _, _ := mustFlatSeed(t)
	condOff, condLen := condRange(data)
	mut := make([]byte, len(data))
	for _, pattern := range []byte{0x01, 0xFF} {
		for i := range data {
			copy(mut, data)
			mut[i] ^= pattern
			if _, err := LoadBundleFlat(bytes.NewReader(mut)); err == nil {
				t.Fatalf("strict loader accepted flip %#02x at byte %d", pattern, i)
			}
			fb, err := decodeFlat(append([]byte(nil), mut...), false)
			if inCond := uint64(i) >= condOff && uint64(i) < condOff+condLen; inCond {
				if err != nil {
					t.Fatalf("mapped decode rejected a cond-only flip at byte %d: %v", i, err)
				}
				if err := fb.Verify(); err == nil {
					t.Fatalf("Verify missed the cond flip at byte %d", i)
				}
			} else if err == nil {
				t.Fatalf("mapped decode accepted flip %#02x at byte %d outside the cond slab", pattern, i)
			}
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := LoadBundleFlat(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("strict loader accepted truncation to %d bytes", n)
		}
		if _, err := decodeFlat(data[:n], false); err == nil {
			t.Fatalf("mapped decode accepted truncation to %d bytes", n)
		}
	}
	extended := append(append([]byte(nil), data...), 0)
	if _, err := LoadBundleFlat(bytes.NewReader(extended)); err == nil {
		t.Fatal("strict loader accepted a one-byte extension")
	}
	if _, err := decodeFlat(extended, false); err == nil {
		t.Fatal("mapped decode accepted a one-byte extension")
	}
}

func TestLoadBundleMapped(t *testing.T) {
	data, words, src, res := mustFlatSeed(t)
	path := filepath.Join(t.TempDir(), "school.bundle")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fb, err := LoadBundleMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	checkFlatAgainst(t, fb, words, src, res)
	if mmapSupported && hostLittleEndian && !fb.Mapped {
		t.Fatal("mapped load fell back to the heap on a platform that supports mmap")
	}
	if err := fb.Verify(); err != nil {
		t.Fatalf("Verify on a pristine mapped bundle: %v", err)
	}
	if fb.Closed() {
		t.Fatal("Closed before Close")
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if !fb.Closed() {
		t.Fatal("Closed not reported after Close")
	}
	if err := fb.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
}

func TestLoadBundleMappedCorruption(t *testing.T) {
	data, _, _, _ := mustFlatSeed(t)
	condOff, _ := condRange(data)
	dir := t.TempDir()

	// A flip in the metadata (vocabulary table, after cond) must fail the
	// mapped load outright.
	metaFlipped := append([]byte(nil), data...)
	metaFlipped[len(metaFlipped)-1] ^= 0xFF
	badPath := filepath.Join(dir, "meta.bundle")
	if err := os.WriteFile(badPath, metaFlipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundleMapped(badPath); err == nil {
		t.Fatal("mapped load accepted a metadata flip")
	}

	// A flip inside the cond slab is invisible to the O(1) load by design,
	// but the full Verify pass must catch it.
	condFlipped := append([]byte(nil), data...)
	condFlipped[condOff] ^= 0xFF
	condPath := filepath.Join(dir, "cond.bundle")
	if err := os.WriteFile(condPath, condFlipped, 0o644); err != nil {
		t.Fatal(err)
	}
	fb, err := LoadBundleMapped(condPath)
	if err != nil {
		t.Fatalf("mapped load rejected a cond-only flip: %v", err)
	}
	defer fb.Close()
	if err := fb.Verify(); err == nil {
		t.Fatal("Verify missed a cond flip in a mapped bundle")
	}

	// A truncated file must fail before any section is trusted.
	truncPath := filepath.Join(dir, "trunc.bundle")
	if err := os.WriteFile(truncPath, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundleMapped(truncPath); err == nil {
		t.Fatal("mapped load accepted a truncated file")
	}
	if _, err := LoadBundleMapped(filepath.Join(dir, "missing.bundle")); err == nil {
		t.Fatal("mapped load accepted a missing file")
	}
}

func TestConvertBundleToFlat(t *testing.T) {
	_, words, src, res, err := flatSeedBytes()
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := SaveBundleMeta(&jsonBuf, words, src, res, flatTestMeta()); err != nil {
		t.Fatal(err)
	}
	var converted bytes.Buffer
	if err := ConvertBundleToFlat(bytes.NewReader(jsonBuf.Bytes()), &converted); err != nil {
		t.Fatal(err)
	}
	// JSON float64 encoding round-trips bit-exactly, so converting the JSON
	// bundle must reproduce the directly saved flat bytes.
	direct, _, _, _ := mustFlatSeed(t)
	if !bytes.Equal(converted.Bytes(), direct) {
		t.Fatal("converted bundle differs from a direct flat save")
	}
	// Flat input has no knowledge source to convert from.
	if err := ConvertBundleToFlat(bytes.NewReader(direct), io.Discard); err == nil {
		t.Fatal("flat input accepted for conversion")
	}
}
