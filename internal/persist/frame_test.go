package persist

import (
	"bytes"
	"strings"
	"testing"
)

const testFrameMagic = "TESTMAGC"

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xab, 0x00, 0x7f}, 100)}
	for _, payload := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, testFrameMagic, 7, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		version, got, err := ReadFrame(&buf, testFrameMagic, 1<<20, "test frame")
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if version != 7 {
			t.Fatalf("version = %d, want 7", version)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round-trip mismatch: got %x want %x", got, payload)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes left unread after frame", buf.Len())
		}
	}
}

func TestFrameAppendMatchesWrite(t *testing.T) {
	payload := []byte("some payload bytes")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, testFrameMagic, 3, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	appended := AppendFrame(nil, testFrameMagic, 3, payload)
	if !bytes.Equal(buf.Bytes(), appended) {
		t.Fatalf("WriteFrame and AppendFrame produced different bytes")
	}
}

func TestFrameEveryBitFlipRejected(t *testing.T) {
	payload := []byte("frame integrity payload")
	frame := AppendFrame(nil, testFrameMagic, 1, payload)
	for i := range frame {
		mutated := append([]byte(nil), frame...)
		mutated[i] ^= 0x01
		_, _, err := ReadFrame(bytes.NewReader(mutated), testFrameMagic, 1<<20, "test frame")
		// A flip in the version field alone still reads cleanly at this
		// layer (the CRC covers the payload; version policy is the
		// caller's), so only exempt those 4 bytes.
		if i >= 8 && i < 12 {
			if err != nil {
				t.Fatalf("flip in version byte %d should decode (version policy is the caller's): %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("1-byte flip at offset %d accepted", i)
		}
	}
}

func TestFrameEveryTruncationRejected(t *testing.T) {
	frame := AppendFrame(nil, testFrameMagic, 1, []byte("truncation payload"))
	for n := 0; n < len(frame); n++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:n]), testFrameMagic, 1<<20, "test frame")
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(frame))
		}
	}
}

func TestFrameOversizeLengthRejected(t *testing.T) {
	frame := AppendFrame(nil, testFrameMagic, 1, make([]byte, 64))
	_, _, err := ReadFrame(bytes.NewReader(frame), testFrameMagic, 63, "test frame")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("payload above maxPayload not rejected: %v", err)
	}
}

func TestFrameWrongMagicRejected(t *testing.T) {
	frame := AppendFrame(nil, "OTHERMGC", 1, []byte("payload"))
	_, _, err := ReadFrame(bytes.NewReader(frame), testFrameMagic, 1<<20, "test frame")
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign magic not rejected: %v", err)
	}
}

func TestFrameBadMagicLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("short magic did not panic")
		}
	}()
	AppendFrame(nil, "SHORT", 1, nil)
}
