package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sourcelda/internal/core"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/textproc"
)

// synthBundle builds a deterministic synthetic model of the given shape —
// big enough to exercise real load costs without paying for training.
func synthBundle(T, V int) ([]string, *knowledge.Source, *core.Result) {
	words := make([]string, V)
	vocab := textproc.NewVocabulary()
	for i := range words {
		words[i] = fmt.Sprintf("w%06d", i)
		vocab.Add(words[i])
	}
	a := knowledge.NewArticleFromText("S1", words[0]+" "+words[1], vocab, nil, true)
	b := knowledge.NewArticleFromText("S2", words[2]+" "+words[3], vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{a, b})

	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53) + 1e-12
	}
	res := &core.Result{
		Phi:            make([][]float64, T),
		Labels:         make([]string, T),
		SourceIndices:  make([]int, T),
		TokenCounts:    make([]int, T),
		DocFrequencies: make([]int, T),
		NumFreeTopics:  T,
		Alpha:          0.5,
	}
	for t := 0; t < T; t++ {
		row := make([]float64, V)
		sum := 0.0
		for w := range row {
			row[w] = next()
			sum += row[w]
		}
		for w := range row {
			row[w] /= sum
		}
		res.Phi[t] = row
		res.Labels[t] = fmt.Sprintf("topic-%d", t)
		res.SourceIndices[t] = -1
		res.TokenCounts[t] = t + 1
		res.DocFrequencies[t] = 1
	}
	return words, src, res
}

var benchShapes = []struct {
	name string
	T, V int
}{
	{"small_T16_V1000", 16, 1000},
	{"medium_T64_V8000", 64, 8000},
	{"large_T256_V30000", 256, 30000},
}

// BenchmarkBundleLoad compares model-load latency across the three paths at
// three model sizes: gzip-JSON decode (O(model) with a transpose), eager flat
// decode (O(model), no transpose), and the mapped flat load (O(1) — only the
// header and small metadata sections are read, so its time is independent of
// T*V). This is the headline number behind the flat format: the mapped load
// of the large shape should beat the JSON decode by well over two orders of
// magnitude.
func BenchmarkBundleLoad(b *testing.B) {
	for _, shape := range benchShapes {
		words, src, res := synthBundle(shape.T, shape.V)
		var jsonBuf, flatBuf bytes.Buffer
		if err := SaveBundleMeta(&jsonBuf, words, src, res, nil); err != nil {
			b.Fatal(err)
		}
		if err := SaveBundleFlat(&flatBuf, words, src, res, nil); err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), shape.name+".bundle")
		if err := os.WriteFile(path, flatBuf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		jsonBytes, flatBytes := jsonBuf.Bytes(), flatBuf.Bytes()

		b.Run("json/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(jsonBytes)))
			for i := 0; i < b.N; i++ {
				bundle, err := LoadBundle(bytes.NewReader(jsonBytes))
				if err != nil {
					b.Fatal(err)
				}
				// The JSON path still has to build the serving view.
				if _, err := core.NewFrozen(bundle.Result); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("flat/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(flatBytes)))
			for i := 0; i < b.N; i++ {
				fb, err := LoadBundleFlat(bytes.NewReader(flatBytes))
				if err != nil {
					b.Fatal(err)
				}
				fb.Close()
			}
		})
		b.Run("mapped/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb, err := LoadBundleMapped(path)
				if err != nil {
					b.Fatal(err)
				}
				fb.Close()
			}
		})
	}
}

// BenchmarkBundleMemoryPerModel measures the resident heap cost of keeping
// many loaded-but-idle models open — the multi-tenant case the mapped path
// exists for. Fifty mapped models of the medium shape should each cost only
// their decoded metadata (labels, vocabulary, counts), never the cond slab,
// which stays in shared page cache until something touches it.
func BenchmarkBundleMemoryPerModel(b *testing.B) {
	const numModels = 50
	words, src, res := synthBundle(64, 8000)
	var flatBuf bytes.Buffer
	if err := SaveBundleFlat(&flatBuf, words, src, res, nil); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "medium.bundle")
	if err := os.WriteFile(path, flatBuf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		bundles := make([]*FlatBundle, numModels)
		for j := range bundles {
			fb, err := LoadBundleMapped(path)
			if err != nil {
				b.Fatal(err)
			}
			bundles[j] = fb
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		if heap := int64(after.HeapAlloc) - int64(before.HeapAlloc); heap > 0 {
			b.ReportMetric(float64(heap)/numModels, "heapB/model")
		}
		for _, fb := range bundles {
			fb.Close()
		}
		runtime.KeepAlive(bundles)
	}
}
