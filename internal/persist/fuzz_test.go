package persist

import (
	"bytes"
	"strings"
	"testing"

	"sourcelda/internal/core"
)

// FuzzLoadCorpus asserts the loader never panics and never returns an
// invalid corpus on arbitrary bytes.
func FuzzLoadCorpus(f *testing.F) {
	f.Add(`{"version":1,"kind":"corpus","vocabulary":["a","b"],"documents":[{"words":[0,1]}]}`)
	f.Add(`{"version":1,"kind":"corpus"`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"version":1,"kind":"corpus","vocabulary":["a"],"documents":[{"words":[9]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		c, err := LoadCorpus(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("loader returned invalid corpus: %v", err)
		}
	})
}

// FuzzLoadBundle asserts the bundle loader never panics and that anything
// it accepts passes cross-validation (it cannot return a bundle whose
// result shapes disagree with its vocabulary or source).
func FuzzLoadBundle(f *testing.F) {
	f.Add(`{"version":1,"kind":"bundle","vocabulary":["a","b"],` +
		`"source":{"version":1,"kind":"source","articles":[{"label":"L","counts":{"0":2}}]},` +
		`"result":{"version":1,"kind":"result","phi":[[0.5,0.5]],"theta":[[1]],"labels":["L"],` +
		`"source_indices":[0],"num_free_topics":0,"token_counts":[3],"doc_frequencies":[1]}}`)
	f.Add(`{"version":1,"kind":"bundle"}`)
	f.Add(`{"version":1,"kind":"result"}`)
	f.Add("\x1f\x8b\x00\x00")
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		b, err := LoadBundle(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := ValidateResult(b.Result, b.Vocab.Size(), b.Source.Len()); err != nil {
			t.Fatalf("loader returned inconsistent bundle: %v", err)
		}
	})
}

// FuzzCorpusRoundTrip: any corpus the loader accepts must survive a second
// save/load unchanged.
func FuzzCorpusRoundTrip(f *testing.F) {
	f.Add(`{"version":1,"kind":"corpus","vocabulary":["a","b"],"documents":[{"name":"d","words":[0,1,0],"topics":[1,0,1]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		c, err := LoadCorpus(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveCorpus(&buf, c); err != nil {
			t.Fatalf("saving a loaded corpus failed: %v", err)
		}
		again, err := LoadCorpus(&buf)
		if err != nil {
			t.Fatalf("reloading a saved corpus failed: %v", err)
		}
		if again.NumDocs() != c.NumDocs() || again.VocabSize() != c.VocabSize() ||
			again.TotalTokens() != c.TotalTokens() {
			t.Fatal("round trip changed the corpus")
		}
	})
}

// FuzzLoadBundleFlat asserts the flat-bundle decoder never panics on
// arbitrary bytes, and that anything it accepts is internally consistent:
// the dimensions, per-topic metadata and cond slab all agree, and the
// inference engine (core.FrozenFromCond) accepts the loaded view. The seed
// corpus includes a fully valid bundle so the fuzzer mutates from real
// structure, not just random prefixes.
func FuzzLoadBundleFlat(f *testing.F) {
	full, _, _, _, err := flatSeedBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte(FlatBundleMagic))
	f.Add([]byte{})
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, input []byte) {
		fb, err := LoadBundleFlat(bytes.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(fb.Cond) != fb.T*fb.V {
			t.Fatalf("cond has %d values for T=%d V=%d", len(fb.Cond), fb.T, fb.V)
		}
		if len(fb.Labels) != fb.T || len(fb.SourceIndices) != fb.T ||
			len(fb.TokenCounts) != fb.T || len(fb.DocFrequencies) != fb.T {
			t.Fatal("per-topic metadata length disagrees with T")
		}
		if fb.Vocab.Size() != fb.V {
			t.Fatalf("vocabulary has %d words for V=%d", fb.Vocab.Size(), fb.V)
		}
		if fb.NumFreeTopics < 0 || fb.NumFreeTopics > fb.T {
			t.Fatalf("free-topic count %d outside [0, %d]", fb.NumFreeTopics, fb.T)
		}
		for tt, s := range fb.SourceIndices {
			if s < -1 || s >= fb.NumSourceArticles {
				t.Fatalf("topic %d references source article %d of %d", tt, s, fb.NumSourceArticles)
			}
		}
		if _, err := core.FrozenFromCond(fb.Cond, fb.T, fb.V, fb.Labels, fb.SourceIndices, fb.Alpha); err != nil {
			t.Fatalf("engine rejected a loaded flat bundle: %v", err)
		}
		if err := fb.Verify(); err != nil {
			t.Fatalf("Verify failed on freshly accepted bytes: %v", err)
		}
	})
}

// FuzzLoadCheckpoint asserts the binary checkpoint decoder never panics on
// arbitrary bytes, and that anything it accepts re-encodes to bytes the
// decoder accepts again with the identical decoded value (a stable
// fixed point, so resume-from-checkpoint never amplifies corruption).
func FuzzLoadCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	if err := SaveCheckpoint(&seed, checkpointFixture()); err != nil {
		f.Fatal(err)
	}
	full := seed.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte(checkpointMagic))
	f.Add([]byte(`{"version":1,"kind":"corpus"}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		ck, err := LoadCheckpoint(bytes.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, ck); err != nil {
			t.Fatalf("saving a loaded checkpoint failed: %v", err)
		}
		again, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading a saved checkpoint failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := SaveCheckpoint(&buf2, again); err != nil {
			t.Fatalf("re-saving failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("checkpoint encoding is not a fixed point")
		}
	})
}
