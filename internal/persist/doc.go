// Package persist serializes the library's data artifacts so trained state
// survives the process that produced it. Three artifact families exist,
// each versioned and validated on load:
//
//   - JSON snapshots (persist.go): corpora, knowledge sources and fitted
//     results, human-inspectable and stable across releases. LoadResult
//     only checks internal consistency; ValidateResult cross-checks a
//     snapshot against the corpus vocabulary and source it is being
//     attached to, and every attach path (model loading, bundles) funnels
//     through it so a snapshot from a different corpus/source pair fails
//     loudly instead of panicking deep inside rendering or inference.
//
//   - Serving bundles (bundle.go): one gzip-compressed file holding the
//     vocabulary, knowledge source and result — everything a serving
//     process (cmd/srcldad) needs to tokenize, score and label unseen
//     documents with no companion files.
//
//   - Training checkpoints (checkpoint.go): the framed little-endian binary
//     encoding of core.Checkpoint — mid-run sampler state dominated by one
//     int32 per corpus token — with a magic string, format version,
//     explicit payload length and CRC-32. The frame distinguishes the
//     crash-time failure modes: truncated writes fail the length check,
//     torn or bit-flipped writes fail the checksum, foreign files fail the
//     magic, future formats fail the version. CheckpointWriter adds the
//     durability protocol (temp file in the target directory, fsync,
//     atomic rename) and bounded retention of the newest N checkpoints;
//     LatestCheckpoint/LoadCheckpointFile are the crash-recovery readers.
//     Structural validation against the corpus, source and options happens
//     in core.Restore, which is the only consumer of a decoded checkpoint.
//
// Invariant across all three: a loader either returns a value whose shape
// passed validation, or an error — never a partially-decoded artifact. The
// decoders are fuzzed (fuzz_test.go) against panics and against accepting
// inconsistent state.
package persist
