package persist

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"sourcelda/internal/core"
)

func fittedResult(t *testing.T) (*core.Result, int, int) {
	t.Helper()
	c, src := fixture(t)
	m, err := core.Fit(c, src, core.Options{
		LambdaMode: core.LambdaFixed, Lambda: 1, Iterations: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	return m.Result(), c.VocabSize(), src.Len()
}

func TestBundleRoundTrip(t *testing.T) {
	c, src := fixture(t)
	m, err := core.Fit(c, src, core.Options{
		LambdaMode: core.LambdaFixed, Lambda: 1, Iterations: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()

	var buf bytes.Buffer
	if err := SaveBundle(&buf, c.Vocab.Words(), src, res); err != nil {
		t.Fatal(err)
	}
	// The archive is gzip-compressed.
	if b := buf.Bytes(); b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("bundle is not gzip-compressed")
	}
	back, err := LoadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Vocab.Size() != c.VocabSize() {
		t.Fatalf("vocab %d, want %d", back.Vocab.Size(), c.VocabSize())
	}
	for id := 0; id < c.VocabSize(); id++ {
		if back.Vocab.Word(id) != c.Vocab.Word(id) {
			t.Fatal("vocabulary order changed")
		}
	}
	if back.Source.Len() != src.Len() || back.Source.Label(0) != src.Label(0) {
		t.Fatal("source changed")
	}
	if back.Result.Alpha != res.Alpha {
		t.Fatalf("alpha %v, want %v", back.Result.Alpha, res.Alpha)
	}
	for t2 := range res.Phi {
		for w := range res.Phi[t2] {
			if back.Result.Phi[t2][w] != res.Phi[t2][w] {
				t.Fatal("phi changed in round trip")
			}
		}
	}

	// A gunzipped bundle still loads (plain JSON fallback).
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bytes.NewReader(plain)); err != nil {
		t.Fatalf("plain-JSON bundle rejected: %v", err)
	}
}

// TestLoadBundleRejectsTrailingGarbage: an uncompressed-JSON bundle followed
// by anything that is not whitespace is rejected — a concatenation or a
// partially overwritten file must not silently load as its first document.
func TestLoadBundleRejectsTrailingGarbage(t *testing.T) {
	c, src := fixture(t)
	m, err := core.Fit(c, src, core.Options{
		LambdaMode: core.LambdaFixed, Lambda: 1, Iterations: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var buf bytes.Buffer
	if err := SaveBundle(&buf, c.Vocab.Words(), src, m.Result()); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, tail := range []string{"x", "{}", "null", `{"version":1}`} {
		if _, err := LoadBundle(bytes.NewReader(append(append([]byte(nil), plain...), tail...))); err == nil {
			t.Fatalf("bundle with trailing %q accepted", tail)
		}
	}
	// Trailing whitespace is not garbage.
	padded := append(append([]byte(nil), plain...), " \n\t\n"...)
	if _, err := LoadBundle(bytes.NewReader(padded)); err != nil {
		t.Fatalf("bundle with trailing whitespace rejected: %v", err)
	}
}

func TestSaveBundleRejectsInconsistency(t *testing.T) {
	res, vocabSize, _ := fittedResult(t)
	_, src := fixture(t)
	// Vocabulary shorter than the phi rows.
	short := make([]string, vocabSize-1)
	for i := range short {
		short[i] = string(rune('a' + i))
	}
	var buf bytes.Buffer
	if err := SaveBundle(&buf, short, src, res); err == nil {
		t.Fatal("undersized vocabulary accepted")
	}
	if err := SaveBundle(&buf, nil, nil, res); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestValidateResult(t *testing.T) {
	res, vocabSize, articles := fittedResult(t)
	if err := ValidateResult(res, vocabSize, articles); err != nil {
		t.Fatalf("consistent result rejected: %v", err)
	}
	check := func(name string, mutate func(*core.Result)) {
		t.Helper()
		res, vocabSize, articles := fittedResult(t)
		mutate(res)
		if err := ValidateResult(res, vocabSize, articles); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	check("wrong vocab width", func(r *core.Result) { r.Phi[0] = r.Phi[0][:1] })
	check("wrong theta width", func(r *core.Result) { r.Theta[0] = r.Theta[0][:1] })
	check("missing label", func(r *core.Result) { r.Labels = r.Labels[:1] })
	check("missing source index", func(r *core.Result) { r.SourceIndices = r.SourceIndices[:1] })
	check("source index out of range", func(r *core.Result) { r.SourceIndices[0] = 99 })
	check("source index below -1", func(r *core.Result) { r.SourceIndices[0] = -2 })
	check("missing token counts", func(r *core.Result) { r.TokenCounts = nil })
	check("missing doc frequencies", func(r *core.Result) { r.DocFrequencies = nil })
	check("negative free topics", func(r *core.Result) { r.NumFreeTopics = -1 })
	check("no topics", func(r *core.Result) { r.Phi = nil })
}
