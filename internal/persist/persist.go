package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/textproc"
)

// FormatVersion tags every serialized artifact.
const FormatVersion = 1

type corpusJSON struct {
	Version int       `json:"version"`
	Kind    string    `json:"kind"`
	Words   []string  `json:"vocabulary"`
	Docs    []docJSON `json:"documents"`
}

type docJSON struct {
	Name   string `json:"name,omitempty"`
	Words  []int  `json:"words"`
	Topics []int  `json:"topics,omitempty"`
}

// SaveCorpus writes c to w as JSON, including ground-truth topics when
// present.
func SaveCorpus(w io.Writer, c *corpus.Corpus) error {
	out := corpusJSON{
		Version: FormatVersion,
		Kind:    "corpus",
		Words:   c.Vocab.Words(),
		Docs:    make([]docJSON, len(c.Docs)),
	}
	for i, d := range c.Docs {
		out.Docs[i] = docJSON{Name: d.Name, Words: d.Words, Topics: d.Topics}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadCorpus reads a corpus written by SaveCorpus and validates it.
func LoadCorpus(r io.Reader) (*corpus.Corpus, error) {
	var in corpusJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode corpus: %w", err)
	}
	if in.Kind != "corpus" {
		return nil, fmt.Errorf("persist: expected kind \"corpus\", got %q", in.Kind)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported corpus version %d", in.Version)
	}
	vocab := textproc.NewVocabulary()
	for _, w := range in.Words {
		vocab.Add(w)
	}
	if vocab.Size() != len(in.Words) {
		return nil, fmt.Errorf("persist: vocabulary contains duplicates")
	}
	c := corpus.NewWithVocab(vocab)
	for _, d := range in.Docs {
		c.AddDocument(&corpus.Document{Name: d.Name, Words: d.Words, Topics: d.Topics})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return c, nil
}

type sourceJSON struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"`
	Articles []articleJSON `json:"articles"`
}

type articleJSON struct {
	Label  string      `json:"label"`
	Counts map[int]int `json:"counts"`
}

// SaveSource writes a knowledge source to w as JSON. Word ids refer to the
// companion corpus vocabulary.
func SaveSource(w io.Writer, s *knowledge.Source) error {
	return json.NewEncoder(w).Encode(sourceToJSON(s))
}

// LoadSource reads a knowledge source written by SaveSource.
func LoadSource(r io.Reader) (*knowledge.Source, error) {
	var in sourceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode source: %w", err)
	}
	return sourceFromJSON(&in)
}

func sourceToJSON(s *knowledge.Source) sourceJSON {
	out := sourceJSON{Version: FormatVersion, Kind: "source"}
	for _, a := range s.Articles() {
		out.Articles = append(out.Articles, articleJSON{Label: a.Label, Counts: a.Counts})
	}
	return out
}

func sourceFromJSON(in *sourceJSON) (*knowledge.Source, error) {
	if in.Kind != "source" {
		return nil, fmt.Errorf("persist: expected kind \"source\", got %q", in.Kind)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported source version %d", in.Version)
	}
	articles := make([]*knowledge.Article, len(in.Articles))
	for i, a := range in.Articles {
		total := 0
		for _, n := range a.Counts {
			total += n
		}
		counts := a.Counts
		if counts == nil {
			counts = map[int]int{}
		}
		articles[i] = &knowledge.Article{Label: a.Label, Counts: counts, TotalTokens: total}
	}
	return knowledge.NewSource(articles)
}

type resultJSON struct {
	Version       int         `json:"version"`
	Kind          string      `json:"kind"`
	Phi           [][]float64 `json:"phi"`
	Theta         [][]float64 `json:"theta"`
	Labels        []string    `json:"labels"`
	SourceIndices []int       `json:"source_indices"`
	NumFreeTopics int         `json:"num_free_topics"`
	Alpha         float64     `json:"alpha,omitempty"`
	TokenCounts   []int       `json:"token_counts"`
	DocFreq       []int       `json:"doc_frequencies"`
}

// SaveResult writes a fitted model snapshot (distributions, labels and
// summary statistics; per-token assignments and traces are omitted for
// size).
func SaveResult(w io.Writer, res *core.Result) error {
	return json.NewEncoder(w).Encode(resultToJSON(res))
}

// LoadResult reads a snapshot written by SaveResult.
func LoadResult(r io.Reader) (*core.Result, error) {
	var in resultJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode result: %w", err)
	}
	return resultFromJSON(&in)
}

func resultToJSON(res *core.Result) resultJSON {
	return resultJSON{
		Version:       FormatVersion,
		Kind:          "result",
		Phi:           res.Phi,
		Theta:         res.Theta,
		Labels:        res.Labels,
		SourceIndices: res.SourceIndices,
		NumFreeTopics: res.NumFreeTopics,
		Alpha:         res.Alpha,
		TokenCounts:   res.TokenCounts,
		DocFreq:       res.DocFrequencies,
	}
}

func resultFromJSON(in *resultJSON) (*core.Result, error) {
	if in.Kind != "result" {
		return nil, fmt.Errorf("persist: expected kind \"result\", got %q", in.Kind)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported result version %d", in.Version)
	}
	if len(in.Phi) != len(in.Labels) || len(in.Phi) != len(in.SourceIndices) {
		return nil, fmt.Errorf("persist: inconsistent result shapes")
	}
	return &core.Result{
		Phi:            in.Phi,
		Theta:          in.Theta,
		Labels:         in.Labels,
		SourceIndices:  in.SourceIndices,
		NumFreeTopics:  in.NumFreeTopics,
		Alpha:          in.Alpha,
		TokenCounts:    in.TokenCounts,
		DocFrequencies: in.DocFreq,
	}, nil
}

// ValidateResult cross-checks a loaded snapshot against the corpus
// vocabulary size and knowledge-source article count it is being attached
// to. LoadResult alone can only verify internal consistency; a snapshot
// from a *different* corpus/source pair decodes fine and then panics deep
// inside rendering or inference, so every attach path (LoadModel,
// LoadBundle) funnels through this.
func ValidateResult(res *core.Result, vocabSize, numArticles int) error {
	T := len(res.Phi)
	if T == 0 {
		return fmt.Errorf("persist: snapshot has no topics")
	}
	for t, row := range res.Phi {
		if len(row) != vocabSize {
			return fmt.Errorf("persist: snapshot phi row %d has %d entries; corpus vocabulary has %d",
				t, len(row), vocabSize)
		}
	}
	for d, row := range res.Theta {
		if len(row) != T {
			return fmt.Errorf("persist: snapshot theta row %d has %d entries for %d topics", d, len(row), T)
		}
	}
	if len(res.Labels) != T || len(res.SourceIndices) != T {
		return fmt.Errorf("persist: snapshot has %d topics, %d labels, %d source indices",
			T, len(res.Labels), len(res.SourceIndices))
	}
	if len(res.TokenCounts) != T || len(res.DocFrequencies) != T {
		return fmt.Errorf("persist: snapshot has %d topics, %d token counts, %d doc frequencies",
			T, len(res.TokenCounts), len(res.DocFrequencies))
	}
	if res.NumFreeTopics < 0 || res.NumFreeTopics > T {
		return fmt.Errorf("persist: snapshot free-topic count %d outside [0, %d]", res.NumFreeTopics, T)
	}
	for t, s := range res.SourceIndices {
		if s < -1 || s >= numArticles {
			return fmt.Errorf("persist: snapshot topic %d references source article %d; source has %d",
				t, s, numArticles)
		}
	}
	return nil
}
