package persist

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/textproc"
)

// BundleMeta is optional deployment provenance embedded in a bundle: which
// model this is, which build of it, the fingerprint of the chain options
// that trained it, and when. A model registry keys rollouts and hot-swaps
// on Name/Version; ChainDigest ties the artifact back to the exact training
// configuration (core.Options.ChainDigest, the same digest checkpoints
// embed). All fields are optional — bundles written before metadata existed
// load with a nil Meta.
type BundleMeta struct {
	// Name is the logical model name a registry serves this bundle under.
	Name string `json:"name,omitempty"`
	// Version distinguishes successive builds of the same named model.
	Version string `json:"version,omitempty"`
	// ChainDigest is the chain-shaping options fingerprint, as 16 lowercase
	// hex digits.
	ChainDigest string `json:"chain_digest,omitempty"`
	// TrainedAt records when training finished (UTC).
	TrainedAt time.Time `json:"trained_at,omitzero"`
}

// Bundle is everything a serving process needs to score new documents
// against a fitted model: the training vocabulary (to tokenize and encode
// incoming text), the knowledge source (topic labels and provenance), and
// the fitted result snapshot — one self-contained, one-file deployment
// artifact. Meta is optional provenance (nil for bundles written without
// it).
type Bundle struct {
	Vocab  *textproc.Vocabulary
	Source *knowledge.Source
	Result *core.Result
	Meta   *BundleMeta
}

type bundleJSON struct {
	Version    int         `json:"version"`
	Kind       string      `json:"kind"`
	Meta       *BundleMeta `json:"meta,omitempty"`
	Vocabulary []string    `json:"vocabulary"`
	Source     sourceJSON  `json:"source"`
	Result     resultJSON  `json:"result"`
}

// SaveBundle writes a gzip-compressed versioned archive of the vocabulary,
// knowledge source and result. Phi rows dominate the payload and compress
// well (long runs of near-ε probabilities), so bundles ship much smaller
// than the bare SaveResult JSON.
func SaveBundle(w io.Writer, vocab []string, src *knowledge.Source, res *core.Result) error {
	return SaveBundleMeta(w, vocab, src, res, nil)
}

// SaveBundleMeta is SaveBundle with deployment metadata embedded. meta may
// be nil (identical to SaveBundle); an all-zero meta is normalized to nil so
// an empty struct does not change the written bytes.
func SaveBundleMeta(w io.Writer, vocab []string, src *knowledge.Source, res *core.Result, meta *BundleMeta) error {
	if src == nil || res == nil {
		return fmt.Errorf("persist: nil source or result")
	}
	if err := ValidateResult(res, len(vocab), src.Len()); err != nil {
		return fmt.Errorf("persist: refusing to save inconsistent bundle: %w", err)
	}
	if meta != nil && *meta == (BundleMeta{}) {
		meta = nil
	}
	zw := gzip.NewWriter(w)
	out := bundleJSON{
		Version:    FormatVersion,
		Kind:       "bundle",
		Meta:       meta,
		Vocabulary: vocab,
		Source:     sourceToJSON(src),
		Result:     resultToJSON(res),
	}
	if err := json.NewEncoder(zw).Encode(out); err != nil {
		return fmt.Errorf("persist: encode bundle: %w", err)
	}
	return zw.Close()
}

// LoadBundle reads a bundle written by SaveBundle and validates every
// cross-reference (vocabulary uniqueness, result shapes against the
// vocabulary and source). Uncompressed bundle JSON is also accepted, so a
// hand-edited or `gunzip`ed bundle still loads.
func LoadBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("persist: open bundle gzip: %w", err)
		}
		defer zr.Close()
		return loadBundleJSON(zr)
	}
	return loadBundleJSON(br)
}

func loadBundleJSON(r io.Reader) (*Bundle, error) {
	var in bundleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: decode bundle: %w", err)
	}
	// json.Decoder stops at the end of the first value; anything but
	// whitespace after it means the file is not the single JSON document a
	// bundle is — most likely a truncated rewrite or concatenation accident —
	// so reject it rather than silently loading a prefix.
	if dec.More() {
		return nil, fmt.Errorf("persist: bundle has trailing data after the JSON document")
	}
	if in.Kind != "bundle" {
		return nil, fmt.Errorf("persist: expected kind \"bundle\", got %q", in.Kind)
	}
	if in.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported bundle version %d", in.Version)
	}
	vocab := textproc.NewVocabulary()
	for _, w := range in.Vocabulary {
		vocab.Add(w)
	}
	if vocab.Size() != len(in.Vocabulary) {
		return nil, fmt.Errorf("persist: bundle vocabulary contains duplicates")
	}
	src, err := sourceFromJSON(&in.Source)
	if err != nil {
		return nil, err
	}
	res, err := resultFromJSON(&in.Result)
	if err != nil {
		return nil, err
	}
	if err := ValidateResult(res, vocab.Size(), src.Len()); err != nil {
		return nil, err
	}
	return &Bundle{Vocab: vocab, Source: src, Result: res, Meta: in.Meta}, nil
}
