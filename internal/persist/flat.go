package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"unsafe"

	"sourcelda/internal/core"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/textproc"
)

// Flat bundles are the zero-copy serving counterpart of the gzip-JSON bundle:
// instead of a compressed document that must be decoded into heap slabs and
// then transposed into the inference view, the file *is* the inference view.
// The topic-fastest cond[w*T+t] conditional slab that core.Frozen serves from
// is written at save time as raw little-endian float64s at a 64-byte-aligned
// offset, so a loader can mmap the file, validate the header, and hand the
// slab to core.FrozenFromCond without reading — let alone copying — the model
// body. Load time becomes independent of model size, a cold model costs no
// resident memory beyond its small metadata sections, and the kernel shares
// the mapped pages across every process serving the same file.
//
// Layout (all integers little-endian; offsets from the start of the file):
//
//	[0,8)     magic "SLDAFB1\n"
//	[8,256)   header: format version, header length, header CRC-32,
//	          total file size, cond-section CRC-32, small-sections CRC-32,
//	          T, V, S (source-article count), free-topic count, alpha bits,
//	          and a 7-entry section table of {id, offset, length}
//	[256,...) sections, each at a 64-byte-aligned offset, ascending, with
//	          zero padding between them:
//	            1 cond            V*T float64 — cond[w*T+t] = P(w|t)
//	            2 labels          string table, T entries
//	            3 source-indices  T int32 (-1 for free topics)
//	            4 token-counts    T int64
//	            5 doc-frequencies T int64
//	            6 vocabulary      string table, V entries
//	            7 meta            BundleMeta JSON (may be empty)
//
// A string table is a uint32 entry count, that many uint32 byte lengths, then
// the concatenated UTF-8 bytes.
//
// Integrity is split so validation cost matches what a loader touches: the
// header CRC and the explicit file size make any truncation, extension or
// header flip an O(1) rejection; the small-sections CRC covers everything a
// loader must decode anyway (labels, indices, counts, vocabulary, meta); and
// the cond CRC covers the slab. LoadBundleFlat verifies all three.
// LoadBundleMapped verifies the header and small-section CRCs but leaves the
// cond slab unread — touching it would fault in the whole model and defeat
// the O(1) load — so a bit flip inside the mapped slab is only caught by
// (*FlatBundle).Verify, the tool-facing full check.
const (
	// FlatBundleMagic is the 8-byte prefix of every flat bundle; format
	// sniffing (admin API, models-dir watcher, CLI) keys on it.
	FlatBundleMagic = "SLDAFB1\n"
	// FlatBundleVersion is the flat-format version this build reads/writes.
	FlatBundleVersion = 1

	flatAlign     = 64
	flatNumSecs   = 7
	flatHeaderLen = 8 + 4 + 4 + 4 + 4 + 8 + 4 + 4 + 5*8 + 4 + 4 + flatNumSecs*24 // = 256

	secCond    = 1
	secLabels  = 2
	secSrcIdx  = 3
	secTokCnt  = 4
	secDocFreq = 5
	secVocab   = 6
	secMeta    = 7

	// maxFlatDim bounds T and V against corrupt headers whose product would
	// overflow or provoke absurd allocations (2^31 topics or words is far
	// beyond any real model).
	maxFlatDim = 1 << 31
)

// hostLittleEndian reports whether float64/int slabs can be reinterpreted
// from little-endian file bytes without byte swapping. On the (rare)
// big-endian host every slab is decoded element-wise instead — correct, just
// not zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// IsFlatBundle reports whether prefix starts with the flat-bundle magic.
// Eight bytes are enough to sniff; shorter prefixes report false.
func IsFlatBundle(prefix []byte) bool {
	return len(prefix) >= len(FlatBundleMagic) && string(prefix[:len(FlatBundleMagic)]) == FlatBundleMagic
}

// FlatBundle is a loaded flat bundle: everything a serving process needs,
// with the cond slab possibly backed directly by mapped file pages (Mapped
// reports which). Close releases the mapping; the owner must keep the bundle
// (and anything aliasing Cond) away from readers after Close — the facade's
// reference-counted model lifetime does exactly that.
type FlatBundle struct {
	// T, V are the topic and vocabulary counts; NumSourceArticles is the
	// knowledge-source article count source indices were validated against.
	T, V              int
	NumSourceArticles int
	// NumFreeTopics and Alpha mirror the result snapshot fields.
	NumFreeTopics int
	Alpha         float64
	// Cond is the topic-fastest conditional slab, cond[w*T+t] = P(w|t) —
	// bit-identical to the slab core.NewFrozen builds from the JSON bundle's
	// Phi. Do not mutate; when Mapped it aliases read-only file pages.
	Cond []float64
	// Labels, SourceIndices, TokenCounts and DocFrequencies are the per-topic
	// metadata, decoded onto the heap (safe to use after Close).
	Labels         []string
	SourceIndices  []int
	TokenCounts    []int
	DocFrequencies []int
	// Vocab is the training vocabulary rebuilt on the heap.
	Vocab *textproc.Vocabulary
	// Meta is the embedded provenance, nil when the bundle has none.
	Meta *BundleMeta
	// Mapped reports whether Cond aliases mmap'ed file pages (true only on
	// the LoadBundleMapped fast path); when false Cond is heap memory and
	// Close is a no-op.
	Mapped bool

	mu     sync.Mutex
	unmap  func() error
	closed bool
	// raw is the full file image while it is available (mapped pages, or the
	// heap buffer of an eager load); Verify re-checksums it.
	raw []byte
}

// Close releases the memory mapping (if any). It is idempotent. The caller
// must guarantee no goroutine can still read Cond: the facade ties Close to
// the inference session's drained refcount so a hot swap unmaps only after
// the last in-flight batch releases its pin.
func (b *FlatBundle) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	b.raw = nil
	if b.unmap != nil {
		err := b.unmap()
		b.unmap = nil
		return err
	}
	return nil
}

// Closed reports whether Close has run.
func (b *FlatBundle) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// MappedBytes returns the size of the memory-mapped file image backing the
// bundle, or 0 when the bundle is heap-backed or the mapping was released —
// the number a process-level mapped-memory gauge sums over loaded models.
func (b *FlatBundle) MappedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.Mapped || b.closed {
		return 0
	}
	return int64(len(b.raw))
}

// Verify re-checksums the whole file image, including the cond slab the
// mapped fast path deliberately leaves unread. It faults in every page, so
// it is a tool/test operation, not a serving one. After Close it fails.
func (b *FlatBundle) Verify() error {
	b.mu.Lock()
	raw := b.raw
	b.mu.Unlock()
	if raw == nil {
		return fmt.Errorf("persist: flat bundle closed or loaded without its file image")
	}
	_, err := decodeFlat(raw, true)
	return err
}

// SaveBundleFlat writes the flat, mmap-able serving bundle for the same
// (vocabulary, source, result, meta) tuple SaveBundleMeta archives as gzip
// JSON. The knowledge source itself is not serialized — the flat format is a
// serving artifact and records only the article count for source-index
// validation — so a flat bundle cannot be converted back to a JSON bundle.
// The encoding is deterministic: identical inputs produce identical bytes.
func SaveBundleFlat(w io.Writer, vocab []string, src *knowledge.Source, res *core.Result, meta *BundleMeta) error {
	if src == nil || res == nil {
		return fmt.Errorf("persist: nil source or result")
	}
	if err := ValidateResult(res, len(vocab), src.Len()); err != nil {
		return fmt.Errorf("persist: refusing to save inconsistent bundle: %w", err)
	}
	if meta != nil && *meta == (BundleMeta{}) {
		meta = nil
	}
	T, V := len(res.Phi), len(vocab)

	// Section payloads. The cond slab is the exact transpose core.NewFrozen
	// performs at load time, done once here instead of on every load.
	cond := make([]byte, 8*T*V)
	for t, row := range res.Phi {
		for wd, p := range row {
			binary.LittleEndian.PutUint64(cond[8*(wd*T+t):], math.Float64bits(p))
		}
	}
	labels, err := encodeStringTable(res.Labels)
	if err != nil {
		return fmt.Errorf("persist: encode labels: %w", err)
	}
	srcIdx := make([]byte, 4*T)
	for t, s := range res.SourceIndices {
		binary.LittleEndian.PutUint32(srcIdx[4*t:], uint32(int32(s)))
	}
	tokCnt := make([]byte, 8*T)
	for t, n := range res.TokenCounts {
		binary.LittleEndian.PutUint64(tokCnt[8*t:], uint64(int64(n)))
	}
	docFreq := make([]byte, 8*T)
	for t, n := range res.DocFrequencies {
		binary.LittleEndian.PutUint64(docFreq[8*t:], uint64(int64(n)))
	}
	vocabSec, err := encodeStringTable(vocab)
	if err != nil {
		return fmt.Errorf("persist: encode vocabulary: %w", err)
	}
	var metaSec []byte
	if meta != nil {
		metaSec, err = json.Marshal(meta)
		if err != nil {
			return fmt.Errorf("persist: encode bundle meta: %w", err)
		}
	}

	payloads := [flatNumSecs][]byte{cond, labels, srcIdx, tokCnt, docFreq, vocabSec, metaSec}
	type sec struct{ off, n uint64 }
	var secs [flatNumSecs]sec
	off := uint64(flatHeaderLen)
	for i, p := range payloads {
		off = alignUp(off, flatAlign)
		secs[i] = sec{off: off, n: uint64(len(p))}
		off += uint64(len(p))
	}
	fileSize := off

	smallH := crc32.NewIEEE()
	for _, p := range payloads[1:] {
		smallH.Write(p)
	}

	// Header: fixed fields then the section table; CRC computed with its own
	// field zeroed.
	hdr := make([]byte, flatHeaderLen)
	copy(hdr, FlatBundleMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], FlatBundleVersion)
	le.PutUint32(hdr[12:], flatHeaderLen)
	// hdr[16:20] = header CRC, filled last
	// hdr[20:24] = reserved (zero)
	le.PutUint64(hdr[24:], fileSize)
	le.PutUint32(hdr[32:], crc32.ChecksumIEEE(cond))
	le.PutUint32(hdr[36:], smallH.Sum32())
	le.PutUint64(hdr[40:], uint64(T))
	le.PutUint64(hdr[48:], uint64(V))
	le.PutUint64(hdr[56:], uint64(src.Len()))
	le.PutUint64(hdr[64:], uint64(res.NumFreeTopics))
	le.PutUint64(hdr[72:], math.Float64bits(res.Alpha))
	le.PutUint32(hdr[80:], flatNumSecs)
	// hdr[84:88] = reserved (zero)
	for i, s := range secs {
		base := 88 + 24*i
		le.PutUint32(hdr[base:], uint32(i+1)) // section ids are 1-based, in order
		le.PutUint64(hdr[base+8:], s.off)
		le.PutUint64(hdr[base+16:], s.n)
	}
	le.PutUint32(hdr[16:], headerCRC(hdr))

	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("persist: write flat bundle header: %w", err)
	}
	var pad [flatAlign]byte
	pos := uint64(flatHeaderLen)
	for i, p := range payloads {
		if gap := secs[i].off - pos; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return fmt.Errorf("persist: write flat bundle padding: %w", err)
			}
			pos += gap
		}
		if _, err := w.Write(p); err != nil {
			return fmt.Errorf("persist: write flat bundle section %d: %w", i+1, err)
		}
		pos += uint64(len(p))
	}
	return nil
}

// headerCRC computes the header checksum with the CRC field itself zeroed.
func headerCRC(hdr []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(hdr[:16])
	h.Write([]byte{0, 0, 0, 0})
	h.Write(hdr[20:])
	return h.Sum32()
}

func alignUp(n, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }

func encodeStringTable(ss []string) ([]byte, error) {
	n := 4 + 4*len(ss)
	for _, s := range ss {
		if len(s) > math.MaxUint32 {
			return nil, fmt.Errorf("string of %d bytes exceeds table limit", len(s))
		}
		n += len(s)
	}
	out := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(out, uint32(len(ss)))
	for _, s := range ss {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
	}
	for _, s := range ss {
		out = append(out, s...)
	}
	return out, nil
}

func decodeStringTable(b []byte, wantCount int, what string) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("persist: flat bundle %s table truncated", what)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count != wantCount {
		return nil, fmt.Errorf("persist: flat bundle %s table has %d entries, want %d", what, count, wantCount)
	}
	if len(b) < 4+4*count {
		return nil, fmt.Errorf("persist: flat bundle %s table truncated", what)
	}
	lens := b[4 : 4+4*count]
	data := b[4+4*count:]
	out := make([]string, count)
	pos := 0
	for i := 0; i < count; i++ {
		n := int(binary.LittleEndian.Uint32(lens[4*i:]))
		if n > len(data)-pos {
			return nil, fmt.Errorf("persist: flat bundle %s table overruns its section", what)
		}
		out[i] = string(data[pos : pos+n])
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("persist: flat bundle %s table has %d trailing bytes", what, len(data)-pos)
	}
	return out, nil
}

// LoadBundleFlat reads and fully verifies a flat bundle from r: header CRC,
// file size, section geometry, zero padding, small-section CRC and the cond
// slab CRC. Every truncation and every bit flip of a valid file is rejected.
// The cond slab aliases the read buffer when the host allows it (no second
// copy), otherwise it is decoded element-wise; either way the result owns
// heap memory only — no Close obligation, Mapped is false.
func LoadBundleFlat(r io.Reader) (*FlatBundle, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: read flat bundle: %w", err)
	}
	return decodeFlat(data, true)
}

// decodeFlat validates and decodes a full file image. verifyCond controls
// whether the cond slab is checksummed: the eager loader always does; the
// mapped loader must not, because reading the slab would fault in the entire
// model and make load O(model) again.
func decodeFlat(data []byte, verifyCond bool) (*FlatBundle, error) {
	le := binary.LittleEndian
	if len(data) < flatHeaderLen {
		return nil, fmt.Errorf("persist: flat bundle truncated: %d bytes, header needs %d", len(data), flatHeaderLen)
	}
	if !IsFlatBundle(data) {
		return nil, fmt.Errorf("persist: not a flat bundle (bad magic)")
	}
	if v := le.Uint32(data[8:]); v != FlatBundleVersion {
		return nil, fmt.Errorf("persist: unsupported flat bundle version %d (this build reads version %d)", v, FlatBundleVersion)
	}
	if hl := le.Uint32(data[12:]); hl != flatHeaderLen {
		return nil, fmt.Errorf("persist: flat bundle header length %d, want %d", hl, flatHeaderLen)
	}
	if got, want := le.Uint32(data[16:]), headerCRC(data[:flatHeaderLen]); got != want {
		return nil, fmt.Errorf("persist: flat bundle header checksum mismatch (file %08x, computed %08x)", got, want)
	}
	if le.Uint32(data[20:]) != 0 || le.Uint32(data[84:]) != 0 {
		return nil, fmt.Errorf("persist: flat bundle reserved header bytes are not zero")
	}
	if fs := le.Uint64(data[24:]); fs != uint64(len(data)) {
		return nil, fmt.Errorf("persist: flat bundle is %d bytes but header says %d (truncated or extended)", len(data), fs)
	}
	condCRC := le.Uint32(data[32:])
	smallCRC := le.Uint32(data[36:])
	T64, V64, S64 := le.Uint64(data[40:]), le.Uint64(data[48:]), le.Uint64(data[56:])
	numFree64 := le.Uint64(data[64:])
	alpha := math.Float64frombits(le.Uint64(data[72:]))
	if T64 == 0 || V64 == 0 || T64 > maxFlatDim || V64 > maxFlatDim {
		return nil, fmt.Errorf("persist: flat bundle dimensions T=%d V=%d out of range", T64, V64)
	}
	if S64 > maxFlatDim {
		return nil, fmt.Errorf("persist: flat bundle source-article count %d out of range", S64)
	}
	T, V, S := int(T64), int(V64), int(S64)
	if numFree64 > T64 {
		return nil, fmt.Errorf("persist: flat bundle free-topic count %d outside [0, %d]", numFree64, T)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha < 0 {
		return nil, fmt.Errorf("persist: flat bundle alpha %v is not a finite non-negative prior", alpha)
	}
	if n := le.Uint32(data[80:]); n != flatNumSecs {
		return nil, fmt.Errorf("persist: flat bundle has %d sections, want %d", n, flatNumSecs)
	}

	// Section table: ids 1..7 in order, 64-byte-aligned ascending offsets,
	// in bounds, non-overlapping, with zero padding in every gap (so no byte
	// of the file escapes validation or checksumming).
	var secs [flatNumSecs][]byte
	pos := uint64(flatHeaderLen)
	for i := 0; i < flatNumSecs; i++ {
		base := 88 + 24*i
		if id := le.Uint32(data[base:]); id != uint32(i+1) {
			return nil, fmt.Errorf("persist: flat bundle section %d has id %d", i+1, id)
		}
		if le.Uint32(data[base+4:]) != 0 {
			return nil, fmt.Errorf("persist: flat bundle reserved section bytes are not zero")
		}
		off, n := le.Uint64(data[base+8:]), le.Uint64(data[base+16:])
		if off%flatAlign != 0 {
			return nil, fmt.Errorf("persist: flat bundle section %d offset %d is not %d-byte aligned", i+1, off, flatAlign)
		}
		if off < pos || off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, fmt.Errorf("persist: flat bundle section %d [%d,%d) out of bounds or overlapping", i+1, off, off+n)
		}
		for _, b := range data[pos:off] {
			if b != 0 {
				return nil, fmt.Errorf("persist: flat bundle padding before section %d is not zero", i+1)
			}
		}
		secs[i] = data[off : off+n]
		pos = off + n
	}
	if pos != uint64(len(data)) {
		return nil, fmt.Errorf("persist: flat bundle has %d bytes after the last section", uint64(len(data))-pos)
	}

	smallH := crc32.NewIEEE()
	for _, s := range secs[1:] {
		smallH.Write(s)
	}
	if got := smallH.Sum32(); got != smallCRC {
		return nil, fmt.Errorf("persist: flat bundle metadata checksum mismatch (file %08x, computed %08x)", smallCRC, got)
	}
	if verifyCond {
		if got := crc32.ChecksumIEEE(secs[0]); got != condCRC {
			return nil, fmt.Errorf("persist: flat bundle cond-slab checksum mismatch (file %08x, computed %08x)", condCRC, got)
		}
	}

	// Geometry of the cond slab against the header dimensions, without
	// overflowing: n float64s, n/T must equal V exactly.
	condBytes := secs[0]
	if len(condBytes)%8 != 0 {
		return nil, fmt.Errorf("persist: flat bundle cond section length %d is not a multiple of 8", len(condBytes))
	}
	n := len(condBytes) / 8
	if n/T != V || n%T != 0 {
		return nil, fmt.Errorf("persist: flat bundle cond section holds %d values, want T*V = %d*%d", n, T, V)
	}

	labels, err := decodeStringTable(secs[1], T, "label")
	if err != nil {
		return nil, err
	}
	srcIdxB := secs[2]
	if len(srcIdxB) != 4*T {
		return nil, fmt.Errorf("persist: flat bundle source-index section is %d bytes, want %d", len(srcIdxB), 4*T)
	}
	srcIdx := make([]int, T)
	for t := range srcIdx {
		s := int(int32(le.Uint32(srcIdxB[4*t:])))
		if s < -1 || s >= S {
			return nil, fmt.Errorf("persist: flat bundle topic %d references source article %d; source has %d", t, s, S)
		}
		srcIdx[t] = s
	}
	tokCnt, err := decodeInt64Section(secs[3], T, "token-count")
	if err != nil {
		return nil, err
	}
	docFreq, err := decodeInt64Section(secs[4], T, "doc-frequency")
	if err != nil {
		return nil, err
	}
	words, err := decodeStringTable(secs[5], V, "vocabulary")
	if err != nil {
		return nil, err
	}
	vocab := textproc.NewVocabulary()
	for _, w := range words {
		vocab.Add(w)
	}
	if vocab.Size() != V {
		return nil, fmt.Errorf("persist: flat bundle vocabulary contains duplicates")
	}
	var meta *BundleMeta
	if len(secs[6]) > 0 {
		meta = &BundleMeta{}
		if err := json.Unmarshal(secs[6], meta); err != nil {
			return nil, fmt.Errorf("persist: flat bundle meta: %w", err)
		}
	}

	cond, _ := bytesToFloat64s(condBytes)
	return &FlatBundle{
		T:                 T,
		V:                 V,
		NumSourceArticles: S,
		NumFreeTopics:     int(numFree64),
		Alpha:             alpha,
		Cond:              cond,
		Labels:            labels,
		SourceIndices:     srcIdx,
		TokenCounts:       tokCnt,
		DocFrequencies:    docFreq,
		Vocab:             vocab,
		Meta:              meta,
		raw:               data,
	}, nil
}

func decodeInt64Section(b []byte, T int, what string) ([]int, error) {
	if len(b) != 8*T {
		return nil, fmt.Errorf("persist: flat bundle %s section is %d bytes, want %d", what, len(b), 8*T)
	}
	out := make([]int, T)
	for t := range out {
		v := int64(binary.LittleEndian.Uint64(b[8*t:]))
		if v < 0 {
			return nil, fmt.Errorf("persist: flat bundle %s for topic %d is negative", what, t)
		}
		out[t] = int(v)
	}
	return out, nil
}

// bytesToFloat64s reinterprets little-endian float64 bytes as a []float64
// without copying when the host byte order and alignment allow it, reporting
// whether the result aliases b. The fallback decodes element-wise onto the
// heap (big-endian hosts, or a buffer that landed misaligned).
func bytesToFloat64s(b []byte) ([]float64, bool) {
	n := len(b) / 8
	if n == 0 {
		return nil, false
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, false
}

// ConvertBundleToFlat reads a gzip-JSON (or plain-JSON) bundle from r and
// writes it to w in the flat format — the migration path for existing
// artifacts (`srclda -convert-bundle`). Flat input is rejected: the flat
// format does not carry the knowledge source or training mixtures, so the
// reverse conversion cannot exist.
func ConvertBundleToFlat(r io.Reader, w io.Writer) error {
	b, err := LoadBundle(r)
	if err != nil {
		return err
	}
	return SaveBundleFlat(w, b.Vocab.Words(), b.Source, b.Result, b.Meta)
}
