package persist

import (
	"bytes"
	"strings"
	"testing"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

func fixture(t *testing.T) (*corpus.Corpus, *knowledge.Source) {
	t.Helper()
	c := corpus.New()
	c.AddText("d1", "pencil pencil umpire", nil)
	c.AddText("d2", "ruler ruler baseball", nil)
	c.Docs[0].Topics = []int{0, 0, 1}
	c.Docs[1].Topics = []int{0, 0, 1}
	school := knowledge.NewArticleFromText("School",
		strings.Repeat("pencil ruler ", 10), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("umpire baseball ", 10), c.Vocab, nil, true)
	return c, knowledge.MustNewSource([]*knowledge.Article{school, ball})
}

func TestCorpusRoundTrip(t *testing.T) {
	c, _ := fixture(t)
	var buf bytes.Buffer
	if err := SaveCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDocs() != c.NumDocs() || back.VocabSize() != c.VocabSize() {
		t.Fatalf("shape changed: %d/%d docs, %d/%d vocab",
			back.NumDocs(), c.NumDocs(), back.VocabSize(), c.VocabSize())
	}
	for d := range c.Docs {
		if back.Docs[d].Name != c.Docs[d].Name {
			t.Fatal("names differ")
		}
		for i := range c.Docs[d].Words {
			if back.Docs[d].Words[i] != c.Docs[d].Words[i] {
				t.Fatal("words differ")
			}
			if back.Docs[d].Topics[i] != c.Docs[d].Topics[i] {
				t.Fatal("ground truth lost")
			}
		}
	}
	for id := 0; id < c.VocabSize(); id++ {
		if back.Vocab.Word(id) != c.Vocab.Word(id) {
			t.Fatal("vocabulary order changed")
		}
	}
}

func TestSourceRoundTrip(t *testing.T) {
	c, src := fixture(t)
	_ = c
	var buf bytes.Buffer
	if err := SaveSource(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != src.Len() {
		t.Fatalf("article count %d, want %d", back.Len(), src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		a, b := src.Article(i), back.Article(i)
		if a.Label != b.Label || a.TotalTokens != b.TotalTokens {
			t.Fatalf("article %d metadata changed", i)
		}
		for w, n := range a.Counts {
			if b.Counts[w] != n {
				t.Fatalf("article %d count for %d changed", i, w)
			}
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	c, src := fixture(t)
	m, err := core.Fit(c, src, core.Options{
		LambdaMode: core.LambdaFixed, Lambda: 1, Iterations: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	var buf bytes.Buffer
	if err := SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTopics() != res.NumTopics() {
		t.Fatal("topic count changed")
	}
	for t2 := range res.Phi {
		if back.Labels[t2] != res.Labels[t2] {
			t.Fatal("labels changed")
		}
		for w := range res.Phi[t2] {
			if back.Phi[t2][w] != res.Phi[t2][w] {
				t.Fatal("phi changed")
			}
		}
	}
	// Reduction works on a loaded snapshot.
	red := back.ReduceToK(1)
	if len(red.Result.Phi) != 1 {
		t.Fatal("reduction on loaded result failed")
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	c, src := fixture(t)
	var buf bytes.Buffer
	if err := SaveCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSource(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("corpus accepted as source")
	}
	buf.Reset()
	if err := SaveSource(&buf, src); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("source accepted as corpus")
	}
	if _, err := LoadCorpus(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptCorpus(t *testing.T) {
	// Out-of-range word id must fail validation.
	bad := `{"version":1,"kind":"corpus","vocabulary":["a"],"documents":[{"words":[5]}]}`
	if _, err := LoadCorpus(strings.NewReader(bad)); err == nil {
		t.Fatal("corrupt corpus accepted")
	}
	// Duplicate vocabulary entries must fail.
	dup := `{"version":1,"kind":"corpus","vocabulary":["a","a"],"documents":[]}`
	if _, err := LoadCorpus(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate vocabulary accepted")
	}
	// Wrong version must fail.
	ver := `{"version":99,"kind":"corpus","vocabulary":["a"],"documents":[]}`
	if _, err := LoadCorpus(strings.NewReader(ver)); err == nil {
		t.Fatal("future version accepted")
	}
}
