// Package cluster implements k-means clustering over discrete probability
// distributions with the Jensen–Shannon divergence as the distance, the
// clustering step the paper proposes for superset topic reduction: "At the
// end of the sampling phase we then can use a clustering algorithm (such as
// k-means, JS divergence) to further reduce the modeled topics and give a
// total of K topics" (§III-C3).
package cluster

import (
	"errors"
	"math"

	"sourcelda/internal/mathx"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
)

// Options configures a clustering run.
type Options struct {
	// K is the number of clusters. Required, 1 ≤ K ≤ len(points).
	K int
	// MaxIterations bounds Lloyd iterations. Default 100.
	MaxIterations int
	// Tolerance stops early when the total JS cost improves by less than
	// this amount between iterations. Default 1e-9.
	Tolerance float64
	// Seed seeds the k-means++ style initialization.
	Seed int64
}

// Result holds cluster assignments and centroids.
type Result struct {
	// Assignment[i] is the cluster of point i.
	Assignment []int
	// Centroids[k] is the mean distribution of cluster k.
	Centroids [][]float64
	// Cost is the final total JS divergence of points to their centroids.
	Cost float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeansJS clusters the probability vectors points into K groups using
// Lloyd's algorithm with JS-divergence assignment and mean centroids (the
// arithmetic mean of distributions is itself a distribution, and it
// minimizes the total JS cost to first order).
func KMeansJS(points [][]float64, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("cluster: no points")
	}
	if opts.K < 1 || opts.K > n {
		return nil, errors.New("cluster: K must be in [1, len(points)]")
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("cluster: points have differing dimensions")
		}
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-9
	}

	r := rng.New(opts.Seed)
	centroids := initPlusPlus(points, opts.K, r)
	assign := make([]int, n)
	prevCost := math.Inf(1)
	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Assignment step.
		var cost float64
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for k, c := range centroids {
				if d := stats.JSDivergence(p, c); d < bestD {
					best, bestD = k, d
				}
			}
			assign[i] = best
			cost += bestD
		}
		// Update step: mean of members; empty clusters re-seed to the
		// farthest point.
		counts := make([]int, opts.K)
		next := make([][]float64, opts.K)
		for k := range next {
			next[k] = make([]float64, dim)
		}
		for i, p := range points {
			k := assign[i]
			counts[k]++
			for j, v := range p {
				next[k][j] += v
			}
		}
		for k := range next {
			if counts[k] == 0 {
				far, farD := 0, -1.0
				for i, p := range points {
					d := stats.JSDivergence(p, centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(next[k], points[far])
				assign[far] = k
				continue
			}
			inv := 1 / float64(counts[k])
			for j := range next[k] {
				next[k][j] *= inv
			}
			mathx.Normalize(next[k])
		}
		centroids = next
		res.Iterations = iter + 1
		if prevCost-cost < opts.Tolerance {
			prevCost = cost
			break
		}
		prevCost = cost
	}
	res.Assignment = assign
	res.Centroids = centroids
	res.Cost = prevCost
	return res, nil
}

// initPlusPlus seeds centroids with k-means++: the first uniformly, the
// rest proportional to their JS divergence from the nearest chosen seed.
func initPlusPlus(points [][]float64, k int, r *rng.RNG) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := r.Intn(n)
	centroids = append(centroids, cloneVec(points[first]))
	minDist := make([]float64, n)
	for i, p := range points {
		minDist[i] = stats.JSDivergence(p, centroids[0])
	}
	for len(centroids) < k {
		// All-zero distances (every point coincides with a chosen seed) are
		// legitimate here; Categorical treats them as unsamplable, so fall
		// back to a uniform pick explicitly.
		var total float64
		for _, d := range minDist {
			total += d
		}
		var idx int
		if total > 0 {
			idx = r.Categorical(minDist)
		} else {
			idx = r.Intn(n)
		}
		centroids = append(centroids, cloneVec(points[idx]))
		last := centroids[len(centroids)-1]
		for i, p := range points {
			if d := stats.JSDivergence(p, last); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centroids
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// ReduceTopics clusters the topic-word rows phi to K representatives and
// returns the centroid distributions together with, per original topic, its
// cluster id — the "give a total of K topics" step of §III-C3.
func ReduceTopics(phi [][]float64, k int, seed int64) (centroids [][]float64, membership []int, err error) {
	res, err := KMeansJS(phi, Options{K: k, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return res.Centroids, res.Assignment, nil
}
