package cluster

import (
	"math"
	"testing"

	"sourcelda/internal/mathx"
	"sourcelda/internal/rng"
)

// threeClusters builds 30 noisy distributions around three distinct centers
// over 9 atoms.
func threeClusters() ([][]float64, []int) {
	centers := [][]float64{
		{0.8, 0.1, 0.1, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0.1, 0.8, 0.1, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 0.1, 0.1, 0.8},
	}
	r := rng.New(3)
	var points [][]float64
	var labels []int
	for c, center := range centers {
		for i := 0; i < 10; i++ {
			p := make([]float64, len(center))
			for j, v := range center {
				p[j] = v + r.Float64()*0.05
			}
			mathx.Normalize(p)
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestKMeansJSRecoversClusters(t *testing.T) {
	points, truth := threeClusters()
	res, err := KMeansJS(points, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same true label must share a cluster, and
	// different labels must differ (up to permutation).
	byTruth := map[int]int{}
	for i, c := range res.Assignment {
		if prev, ok := byTruth[truth[i]]; ok {
			if prev != c {
				t.Fatalf("true cluster %d split across k-means clusters %d and %d", truth[i], prev, c)
			}
		} else {
			byTruth[truth[i]] = c
		}
	}
	if len(byTruth) != 3 {
		t.Fatal("clusters merged")
	}
	seen := map[int]bool{}
	for _, c := range byTruth {
		if seen[c] {
			t.Fatal("two true clusters mapped to one k-means cluster")
		}
		seen[c] = true
	}
}

func TestCentroidsAreDistributions(t *testing.T) {
	points, _ := threeClusters()
	res, err := KMeansJS(points, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range res.Centroids {
		var s float64
		for _, v := range c {
			if v < 0 {
				t.Fatalf("centroid %d has negative mass", k)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("centroid %d sums to %v", k, s)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	points, _ := threeClusters()
	if _, err := KMeansJS(nil, Options{K: 1}); err == nil {
		t.Error("no points accepted")
	}
	if _, err := KMeansJS(points, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeansJS(points, Options{K: len(points) + 1}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := KMeansJS([][]float64{{1, 0}, {1}}, Options{K: 1}); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKEqualsN(t *testing.T) {
	points, _ := threeClusters()
	res, err := KMeansJS(points, Options{K: len(points), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every point should be (essentially) its own centroid → near-zero cost.
	if res.Cost > 1e-6 {
		t.Fatalf("K=n cost %v, want ≈0", res.Cost)
	}
}

func TestKOne(t *testing.T) {
	points, _ := threeClusters()
	res, err := KMeansJS(points, Options{K: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assignment {
		if c != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	points, _ := threeClusters()
	a, err := KMeansJS(points, Options{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeansJS(points, Options{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed gave different clusterings")
		}
	}
}

func TestReduceTopics(t *testing.T) {
	points, _ := threeClusters()
	centroids, membership, err := ReduceTopics(points, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 3 || len(membership) != len(points) {
		t.Fatal("wrong output shapes")
	}
}

func TestCostDecreasesWithMoreClusters(t *testing.T) {
	points, _ := threeClusters()
	res1, _ := KMeansJS(points, Options{K: 1, Seed: 3})
	res3, _ := KMeansJS(points, Options{K: 3, Seed: 3})
	if res3.Cost >= res1.Cost {
		t.Fatalf("K=3 cost %v should beat K=1 cost %v", res3.Cost, res1.Cost)
	}
}
