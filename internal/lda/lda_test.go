package lda

import (
	"math"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/rng"
)

// separableCorpus builds a corpus with two disjoint vocabularies so any
// reasonable 2-topic model separates them.
func separableCorpus() *corpus.Corpus {
	c := corpus.New()
	for i := 0; i < 30; i++ {
		c.AddText("a", "apple banana cherry apple banana cherry apple banana", nil)
		c.AddText("b", "engine wheel brake engine wheel brake engine wheel", nil)
	}
	return c
}

func TestFitValidation(t *testing.T) {
	c := separableCorpus()
	cases := []Options{
		{NumTopics: 0, Alpha: 1, Beta: 0.1},
		{NumTopics: 2, Alpha: 0, Beta: 0.1},
		{NumTopics: 2, Alpha: 1, Beta: 0},
	}
	for i, o := range cases {
		o.Iterations = 1
		if _, err := Fit(c, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Fit(corpus.New(), Options{NumTopics: 2, Alpha: 1, Beta: 0.1, Iterations: 1}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestPhiThetaNormalized(t *testing.T) {
	c := separableCorpus()
	m, err := Fit(c, Options{NumTopics: 3, Alpha: 0.5, Beta: 0.1, Iterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range m.Phi() {
		var s float64
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative φ[%d]", k)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("φ[%d] sums to %v", k, s)
		}
	}
	for d, row := range m.Theta() {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", d, s)
		}
	}
}

func TestSeparatesDisjointTopics(t *testing.T) {
	c := separableCorpus()
	m, err := Fit(c, Options{NumTopics: 2, Alpha: 0.5, Beta: 0.01, Iterations: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Phi()
	apple, _ := c.Vocab.ID("apple")
	engine, _ := c.Vocab.ID("engine")
	// Whichever topic likes apple must dislike engine and vice versa.
	appleTopic := 0
	if phi[1][apple] > phi[0][apple] {
		appleTopic = 1
	}
	other := 1 - appleTopic
	if phi[appleTopic][apple] < 0.2 {
		t.Fatalf("apple topic gives apple only %v", phi[appleTopic][apple])
	}
	if phi[appleTopic][engine] > 0.05 {
		t.Fatalf("apple topic leaks engine: %v", phi[appleTopic][engine])
	}
	if phi[other][engine] < 0.2 {
		t.Fatalf("engine topic gives engine only %v", phi[other][engine])
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	c := separableCorpus()
	opts := Options{NumTopics: 2, Alpha: 0.5, Beta: 0.1, Iterations: 10, Seed: 42}
	m1, err := Fit(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	z1, z2 := m1.Assignments(), m2.Assignments()
	for d := range z1 {
		for i := range z1[d] {
			if z1[d][i] != z2[d][i] {
				t.Fatal("same seed produced different chains")
			}
		}
	}
}

func TestLikelihoodImproves(t *testing.T) {
	c := separableCorpus()
	m, err := Fit(c, Options{NumTopics: 2, Alpha: 0.5, Beta: 0.01, Iterations: 60, Seed: 3, TraceLikelihood: true})
	if err != nil {
		t.Fatal(err)
	}
	trace := m.LikelihoodTrace
	if len(trace) != 60 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[len(trace)-1] <= trace[0] {
		t.Fatalf("likelihood did not improve: %v → %v", trace[0], trace[len(trace)-1])
	}
}

func TestCountsConsistentAfterSampling(t *testing.T) {
	c := separableCorpus()
	m, err := Fit(c, Options{NumTopics: 4, Alpha: 0.5, Beta: 0.1, Iterations: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild counts from assignments and compare against the matrices.
	nw := make(map[[2]int]int)
	totals := make([]int, 4)
	for d, doc := range c.Docs {
		for i, w := range doc.Words {
			k := m.Assignments()[d][i]
			nw[[2]int{w, k}]++
			totals[k]++
		}
	}
	for w := 0; w < c.VocabSize(); w++ {
		for k := 0; k < 4; k++ {
			if got := m.WordTopicCounts()[w][k]; got != nw[[2]int{w, k}] {
				t.Fatalf("nw[%d][%d] = %d, rebuilt %d", w, k, got, nw[[2]int{w, k}])
			}
		}
	}
	for k, tot := range m.TopicTotals() {
		if tot != totals[k] {
			t.Fatalf("topic %d total %d, rebuilt %d", k, tot, totals[k])
		}
	}
}

func TestOnIterationCallback(t *testing.T) {
	c := separableCorpus()
	var calls int
	_, err := Fit(c, Options{
		NumTopics: 2, Alpha: 0.5, Beta: 0.1, Iterations: 7, Seed: 1,
		OnIteration: func(iter int, m *Model) {
			if iter != calls {
				t.Fatalf("iteration %d delivered out of order (want %d)", iter, calls)
			}
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestThetaReflectsDocumentContent(t *testing.T) {
	c := separableCorpus()
	m, err := Fit(c, Options{NumTopics: 2, Alpha: 0.1, Beta: 0.01, Iterations: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Theta()
	phi := m.Phi()
	apple, _ := c.Vocab.ID("apple")
	appleTopic := 0
	if phi[1][apple] > phi[0][apple] {
		appleTopic = 1
	}
	// Document 0 is all fruit; its mixture should lean to the apple topic.
	if theta[0][appleTopic] < 0.8 {
		t.Fatalf("fruit document mixture %v, want ≥ 0.8 on fruit topic", theta[0][appleTopic])
	}
}

func TestGeneratedCorpusRecovery(t *testing.T) {
	// Generate from a known 3-topic model and verify LDA recovers topics
	// with low JS divergence to the truth.
	r := rng.New(9)
	V := 30
	truth := make([][]float64, 3)
	for k := range truth {
		truth[k] = make([]float64, V)
		for w := k * 10; w < (k+1)*10; w++ {
			truth[k][w] = 0.1
		}
	}
	c := corpus.New()
	for w := 0; w < V; w++ {
		c.Vocab.Add(string(rune('a'+w%26)) + string(rune('0'+w/26)))
	}
	theta := make([]float64, 3)
	for d := 0; d < 120; d++ {
		r.DirichletSymmetric(0.3, theta)
		doc := &corpus.Document{Words: make([]int, 40)}
		for i := range doc.Words {
			doc.Words[i] = r.Categorical(truth[r.Categorical(theta)])
		}
		c.AddDocument(doc)
	}
	m, err := Fit(c, Options{NumTopics: 3, Alpha: 0.3, Beta: 0.05, Iterations: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Phi()
	// Each truth topic should have a learned topic concentrated on its
	// 10-word block.
	for k := range truth {
		bestMass := 0.0
		for _, learned := range phi {
			var mass float64
			for w := k * 10; w < (k+1)*10; w++ {
				mass += learned[w]
			}
			if mass > bestMass {
				bestMass = mass
			}
		}
		if bestMass < 0.85 {
			t.Fatalf("truth topic %d best recovered mass %v, want ≥ 0.85", k, bestMass)
		}
	}
}
