package lda

import (
	"math"
	"testing"
)

func TestADLDAValidation(t *testing.T) {
	c := separableCorpus()
	bad := []ADLDAOptions{
		{NumTopics: 0, Alpha: 1, Beta: 0.1},
		{NumTopics: 2, Alpha: 0, Beta: 0.1},
		{NumTopics: 2, Alpha: 1, Beta: 0},
	}
	for i, o := range bad {
		o.Iterations = 1
		if _, err := FitADLDA(c, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := FitADLDA(nil, ADLDAOptions{NumTopics: 2, Alpha: 1, Beta: 0.1}); err == nil {
		t.Error("nil corpus accepted")
	}
}

func TestADLDASingleWorkerNormalization(t *testing.T) {
	c := separableCorpus()
	m, err := FitADLDA(c, ADLDAOptions{
		NumTopics: 3, Alpha: 0.5, Beta: 0.1, Iterations: 20, Seed: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range m.Phi() {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("φ[%d] sums to %v", k, s)
		}
	}
	for d, row := range m.Theta() {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", d, s)
		}
	}
}

func TestADLDACountsConsistent(t *testing.T) {
	c := separableCorpus()
	m, err := FitADLDA(c, ADLDAOptions{
		NumTopics: 4, Alpha: 0.5, Beta: 0.1, Iterations: 8, Seed: 2, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int, 4)
	for d, doc := range c.Docs {
		for i := range doc.Words {
			totals[m.Assignments()[d][i]]++
		}
	}
	for k, n := range m.nwsum {
		if n != totals[k] {
			t.Fatalf("merged nwsum[%d] = %d, rebuilt %d", k, n, totals[k])
		}
	}
}

func TestADLDAIsApproximate(t *testing.T) {
	// The paper's §III-C4 point: document-sharded parallel LDA with stale
	// counts is NOT equivalent to the serial chain, unlike the
	// exactness-preserving Algorithms 2 and 3. With >1 worker the
	// assignments must diverge from the 1-worker chain (different RNG
	// streams and stale snapshots). Compare mid-burn-in — after full
	// convergence on separable data every chain reaches the same fixed
	// point, which is exactly why the approximation is acceptable in
	// practice (see TestADLDAStillConverges).
	c := separableCorpus()
	base := ADLDAOptions{NumTopics: 2, Alpha: 0.5, Beta: 0.05, Iterations: 2, Seed: 3}
	one := base
	one.Workers = 1
	m1, err := FitADLDA(c, one)
	if err != nil {
		t.Fatal(err)
	}
	four := base
	four.Workers = 4
	m4, err := FitADLDA(c, four)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := range m1.Assignments() {
		for i := range m1.Assignments()[d] {
			if m1.Assignments()[d][i] != m4.Assignments()[d][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("4-worker AD-LDA reproduced the 1-worker chain exactly; staleness should diverge")
	}
}

func TestADLDAStillConverges(t *testing.T) {
	// Approximate ≠ broken: the sharded sampler must still separate the
	// two disjoint-vocabulary topics.
	c := separableCorpus()
	m, err := FitADLDA(c, ADLDAOptions{
		NumTopics: 2, Alpha: 0.5, Beta: 0.01, Iterations: 100, Seed: 7, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Phi()
	apple, _ := c.Vocab.ID("apple")
	engine, _ := c.Vocab.ID("engine")
	appleTopic := 0
	if phi[1][apple] > phi[0][apple] {
		appleTopic = 1
	}
	if phi[appleTopic][apple] < 0.2 {
		t.Fatalf("apple mass %v", phi[appleTopic][apple])
	}
	if phi[appleTopic][engine] > 0.05 {
		t.Fatalf("topic mixing: engine mass %v", phi[appleTopic][engine])
	}
	// Likelihood comparable to the serial fit on the same data.
	serial, err := Fit(c, Options{NumTopics: 2, Alpha: 0.5, Beta: 0.01, Iterations: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ad, s := m.LogLikelihood(), serial.LogLikelihood(); ad < s-math.Abs(s)*0.05 {
		t.Fatalf("AD-LDA likelihood %v far below serial %v", ad, s)
	}
}

func TestADLDADeterministicPerWorkerCount(t *testing.T) {
	// Same seed and worker count → identical chains (scheduling must not
	// leak into results).
	c := separableCorpus()
	opts := ADLDAOptions{NumTopics: 3, Alpha: 0.5, Beta: 0.1, Iterations: 6, Seed: 9, Workers: 3}
	m1, err := FitADLDA(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitADLDA(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for d := range m1.Assignments() {
		for i := range m1.Assignments()[d] {
			if m1.Assignments()[d][i] != m2.Assignments()[d][i] {
				t.Fatal("same seed+workers produced different chains")
			}
		}
	}
}

func TestADLDAMoreWorkersThanDocs(t *testing.T) {
	c := separableCorpus()
	m, err := FitADLDA(c, ADLDAOptions{
		NumTopics: 2, Alpha: 0.5, Beta: 0.1, Iterations: 2, Seed: 1,
		Workers: c.NumDocs() + 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.shards) != c.NumDocs() {
		t.Fatalf("shards = %d, want clamped to %d", len(m.shards), c.NumDocs())
	}
}
