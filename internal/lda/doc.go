// Package lda implements the baseline Latent Dirichlet Allocation model
// with the collapsed Gibbs sampler of Griffiths & Steyvers — the reference
// point for every comparison in the paper (PAPER.md §II-B, §IV), and the
// base model of the IR-LDA contrast (§IV-C: plain LDA topics labeled
// post-hoc by the TF-IDF/cosine retriever in internal/labeling).
//
// The count-matrix layout and estimation equations are shared conventions
// with the Source-LDA sampler in internal/core:
//
//	P(z_i = j | z_-i, w) ∝ (n^wi_-i,j + β)/(n^·_-i,j + Vβ) · (n^di_-i,j + α)/(n^di_-i + Kα)
//	φ_w,t = (n_w,t + β)/(n_t + Vβ)      θ_t,d = (n_d,t + α)/(n_d + Kα)
//
// Source-LDA's Eq. 2 degenerates to this conditional when every topic is
// free — the property several core tests exploit.
//
// The package also implements AD-LDA (Newman et al.): the
// approximate-distributed variant that sweeps document shards against
// stale count copies and reconciles at a barrier. It is both the paper's
// §III-C4 contrast class (Source-LDA parallelizes *within* a token's topic
// scan and stays exact; AD-LDA parallelizes *across* documents and does
// not) and the template for internal/core's sharded sweep mode.
package lda
