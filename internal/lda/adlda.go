package lda

import (
	"errors"
	"sync"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/rng"
)

// ADLDAOptions configures the approximate distributed sampler.
type ADLDAOptions struct {
	// NumTopics, Alpha, Beta, Iterations, Seed as in Options.
	NumTopics  int
	Alpha      float64
	Beta       float64
	Iterations int
	Seed       int64
	// Workers is the number of parallel document shards (the paper's P).
	Workers int
}

// ADLDAModel is a fitted approximate-distributed LDA chain.
type ADLDAModel struct {
	opts ADLDAOptions
	c    *corpus.Corpus

	K, V, D int
	nw      [][]int // global word-topic counts, synchronized per sweep
	nd      [][]int
	nwsum   []int
	z       [][]int
	shards  [][]int // document indices per worker

	// IterationTimes holds per-sweep wall-clock durations.
	IterationTimes []time.Duration
}

// FitADLDA runs AD-LDA (Newman et al., "Distributed inference for latent
// Dirichlet allocation"): documents are sharded across workers, each worker
// Gibbs-samples its shard against a stale copy of the global word-topic
// counts, and the copies are merged after every sweep.
//
// This is the class of parallel LDA the paper's §III-C4 contrasts against:
// it scales, but the per-sweep staleness makes it an *approximation* — with
// more than one worker the chain is NOT equivalent to serial collapsed
// Gibbs (unlike Algorithms 2 and 3, which parallelize within a token and
// preserve exactness). The tests demonstrate both properties.
func FitADLDA(c *corpus.Corpus, opts ADLDAOptions) (*ADLDAModel, error) {
	if c == nil || c.NumDocs() == 0 {
		return nil, errors.New("lda: empty corpus")
	}
	if opts.NumTopics <= 0 || opts.Alpha <= 0 || opts.Beta <= 0 {
		return nil, errors.New("lda: NumTopics, Alpha and Beta must be positive")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1000
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Workers > c.NumDocs() {
		opts.Workers = c.NumDocs()
	}
	m := &ADLDAModel{
		opts: opts,
		c:    c,
		K:    opts.NumTopics,
		V:    c.VocabSize(),
		D:    c.NumDocs(),
	}
	m.nw = make([][]int, m.V)
	for w := range m.nw {
		m.nw[w] = make([]int, m.K)
	}
	m.nd = make([][]int, m.D)
	m.z = make([][]int, m.D)
	for d := range m.nd {
		m.nd[d] = make([]int, m.K)
		m.z[d] = make([]int, len(c.Docs[d].Words))
	}
	m.nwsum = make([]int, m.K)

	// Contiguous document shards.
	m.shards = make([][]int, opts.Workers)
	per := (m.D + opts.Workers - 1) / opts.Workers
	for s := range m.shards {
		lo := s * per
		hi := lo + per
		if hi > m.D {
			hi = m.D
		}
		for d := lo; d < hi; d++ {
			m.shards[s] = append(m.shards[s], d)
		}
	}

	// Deterministic initialization with the global seed.
	r := rng.New(opts.Seed)
	for d, doc := range c.Docs {
		for i, w := range doc.Words {
			k := r.Intn(m.K)
			m.z[d][i] = k
			m.nw[w][k]++
			m.nd[d][k]++
			m.nwsum[k]++
		}
	}

	// Per-worker generators so shard sampling is deterministic regardless
	// of scheduling.
	workerRNG := make([]*rng.RNG, opts.Workers)
	for s := range workerRNG {
		workerRNG[s] = rng.New(opts.Seed + int64(s) + 1)
	}

	for iter := 0; iter < opts.Iterations; iter++ {
		start := time.Now()
		m.parallelSweep(workerRNG)
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
	}
	return m, nil
}

// parallelSweep runs one AD-LDA iteration: every worker samples its shard
// against a private stale copy of (nw, nwsum); afterwards the global counts
// are rebuilt from the updated assignments.
func (m *ADLDAModel) parallelSweep(workerRNG []*rng.RNG) {
	var wg sync.WaitGroup
	for s, shard := range m.shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, shard []int) {
			defer wg.Done()
			// Stale snapshot of the global state.
			nw := make([][]int, m.V)
			flat := make([]int, m.V*m.K)
			for w := range nw {
				nw[w] = flat[w*m.K : (w+1)*m.K]
				copy(nw[w], m.nw[w])
			}
			nwsum := make([]int, m.K)
			copy(nwsum, m.nwsum)

			r := workerRNG[s]
			probs := make([]float64, m.K)
			alpha, beta := m.opts.Alpha, m.opts.Beta
			vBeta := float64(m.V) * beta
			for _, d := range shard {
				nd := m.nd[d]
				for i, w := range m.c.Docs[d].Words {
					old := m.z[d][i]
					nw[w][old]--
					nd[old]--
					nwsum[old]--
					for k := 0; k < m.K; k++ {
						probs[k] = (float64(nw[w][k]) + beta) / (float64(nwsum[k]) + vBeta) *
							(float64(nd[k]) + alpha)
					}
					k := r.Categorical(probs)
					m.z[d][i] = k
					nw[w][k]++
					nd[k]++
					nwsum[k]++
				}
			}
		}(s, shard)
	}
	wg.Wait()

	// Merge: rebuild the global counts from the (now authoritative)
	// assignments — equivalent to summing per-worker deltas.
	for w := range m.nw {
		for k := range m.nw[w] {
			m.nw[w][k] = 0
		}
	}
	for k := range m.nwsum {
		m.nwsum[k] = 0
	}
	for d, doc := range m.c.Docs {
		for i, w := range doc.Words {
			k := m.z[d][i]
			m.nw[w][k]++
			m.nwsum[k]++
		}
	}
}

// Phi returns the topic-word distributions.
func (m *ADLDAModel) Phi() [][]float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	phi := make([][]float64, m.K)
	for k := range phi {
		row := make([]float64, m.V)
		den := float64(m.nwsum[k]) + vBeta
		for w := 0; w < m.V; w++ {
			row[w] = (float64(m.nw[w][k]) + beta) / den
		}
		phi[k] = row
	}
	return phi
}

// Theta returns the document-topic distributions.
func (m *ADLDAModel) Theta() [][]float64 {
	alpha := m.opts.Alpha
	kAlpha := float64(m.K) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.K)
		var nd int
		for _, n := range m.nd[d] {
			nd += n
		}
		den := float64(nd) + kAlpha
		for k := 0; k < m.K; k++ {
			row[k] = (float64(m.nd[d][k]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns live per-token assignments; do not mutate.
func (m *ADLDAModel) Assignments() [][]int { return m.z }

// LogLikelihood returns the collapsed joint log P(w|z) (same estimator as
// the serial model).
func (m *ADLDAModel) LogLikelihood() float64 {
	ser := &Model{
		opts: Options{NumTopics: m.K, Alpha: m.opts.Alpha, Beta: m.opts.Beta},
		K:    m.K, V: m.V, D: m.D,
		nw: m.nw, nwsum: m.nwsum,
	}
	return ser.LogLikelihood()
}
