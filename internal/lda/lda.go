package lda

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/rng"
)

// Options configures an LDA fit.
type Options struct {
	// NumTopics is K, the number of latent topics. Required.
	NumTopics int
	// Alpha is the symmetric document-topic Dirichlet prior. The paper's
	// experiments use 50/T.
	Alpha float64
	// Beta is the symmetric topic-word Dirichlet prior. The paper's
	// experiments use 200/V.
	Beta float64
	// Iterations is the number of full Gibbs sweeps. Default 1000 (the
	// paper observes good convergence at 1000).
	Iterations int
	// Seed seeds the sampler.
	Seed int64
	// TraceLikelihood, when true, records the joint log-likelihood
	// log P(w|z) after every sweep (the Fig. 6 trace).
	TraceLikelihood bool
	// OnIteration, when non-nil, is invoked after each sweep with the sweep
	// index (0-based) and the model; it may inspect but must not mutate.
	OnIteration func(iter int, m *Model)
}

func (o Options) validate(c *corpus.Corpus) error {
	if o.NumTopics <= 0 {
		return errors.New("lda: NumTopics must be positive")
	}
	if o.Alpha <= 0 || o.Beta <= 0 {
		return errors.New("lda: Alpha and Beta must be positive")
	}
	if c.NumDocs() == 0 {
		return errors.New("lda: empty corpus")
	}
	if c.VocabSize() == 0 {
		return errors.New("lda: empty vocabulary")
	}
	return nil
}

// Model holds the collapsed-Gibbs state and the count matrices.
type Model struct {
	opts Options
	c    *corpus.Corpus
	r    *rng.RNG

	K, V, D int

	// nw[w][k]: tokens of word w assigned to topic k.
	nw [][]int
	// nd[d][k]: tokens of document d assigned to topic k.
	nd [][]int
	// nwsum[k]: total tokens assigned to topic k.
	nwsum []int
	// ndsum[d]: tokens in document d.
	ndsum []int
	// z[d][i]: topic of token i of document d.
	z [][]int

	probs []float64 // scratch for sampling

	// LikelihoodTrace holds log P(w|z) per sweep when tracing is enabled.
	LikelihoodTrace []float64
	// IterationTimes holds the wall-clock duration of each sweep.
	IterationTimes []time.Duration
}

// Fit runs collapsed Gibbs sampling on c and returns the fitted model.
func Fit(c *corpus.Corpus, opts Options) (*Model, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1000
	}
	if err := opts.validate(c); err != nil {
		return nil, err
	}
	m := newModel(c, opts)
	m.initialize()
	for iter := 0; iter < opts.Iterations; iter++ {
		start := time.Now()
		m.sweep()
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
		if opts.TraceLikelihood {
			m.LikelihoodTrace = append(m.LikelihoodTrace, m.LogLikelihood())
		}
		if opts.OnIteration != nil {
			opts.OnIteration(iter, m)
		}
	}
	return m, nil
}

func newModel(c *corpus.Corpus, opts Options) *Model {
	m := &Model{
		opts:  opts,
		c:     c,
		r:     rng.New(opts.Seed),
		K:     opts.NumTopics,
		V:     c.VocabSize(),
		D:     c.NumDocs(),
		probs: make([]float64, opts.NumTopics),
	}
	m.nw = make([][]int, m.V)
	for w := range m.nw {
		m.nw[w] = make([]int, m.K)
	}
	m.nd = make([][]int, m.D)
	m.z = make([][]int, m.D)
	for d := range m.nd {
		m.nd[d] = make([]int, m.K)
		m.z[d] = make([]int, len(c.Docs[d].Words))
	}
	m.nwsum = make([]int, m.K)
	m.ndsum = make([]int, m.D)
	return m
}

func (m *Model) initialize() {
	for d, doc := range m.c.Docs {
		for i, w := range doc.Words {
			k := m.r.Intn(m.K)
			m.z[d][i] = k
			m.nw[w][k]++
			m.nd[d][k]++
			m.nwsum[k]++
			m.ndsum[d]++
		}
	}
}

func (m *Model) sweep() {
	alpha, beta := m.opts.Alpha, m.opts.Beta
	vBeta := float64(m.V) * beta
	for d, doc := range m.c.Docs {
		nd := m.nd[d]
		for i, w := range doc.Words {
			old := m.z[d][i]
			m.nw[w][old]--
			nd[old]--
			m.nwsum[old]--
			nww := m.nw[w]
			for k := 0; k < m.K; k++ {
				m.probs[k] = (float64(nww[k]) + beta) / (float64(m.nwsum[k]) + vBeta) *
					(float64(nd[k]) + alpha)
			}
			k := m.r.Categorical(m.probs)
			m.z[d][i] = k
			m.nw[w][k]++
			nd[k]++
			m.nwsum[k]++
		}
	}
}

// Phi returns the topic-word distributions, φ[k][w] = (n_w,k + β)/(n_k + Vβ).
func (m *Model) Phi() [][]float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	phi := make([][]float64, m.K)
	for k := range phi {
		row := make([]float64, m.V)
		den := float64(m.nwsum[k]) + vBeta
		for w := 0; w < m.V; w++ {
			row[w] = (float64(m.nw[w][k]) + beta) / den
		}
		phi[k] = row
	}
	return phi
}

// Theta returns the document-topic distributions,
// θ[d][k] = (n_d,k + α)/(n_d + Kα).
func (m *Model) Theta() [][]float64 {
	alpha := m.opts.Alpha
	kAlpha := float64(m.K) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.K)
		den := float64(m.ndsum[d]) + kAlpha
		for k := 0; k < m.K; k++ {
			row[k] = (float64(m.nd[d][k]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns the per-token topic assignments, indexed [doc][token].
// The returned slices are the live sampler state; callers must not mutate.
func (m *Model) Assignments() [][]int { return m.z }

// NumTopics returns K.
func (m *Model) NumTopics() int { return m.K }

// LogLikelihood returns the collapsed joint log P(w|z) (Griffiths &
// Steyvers): Σ_k [log Γ(Vβ) − V log Γ(β) + Σ_w log Γ(n_w,k + β) − log Γ(n_k + Vβ)].
func (m *Model) LogLikelihood() float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	lgBeta, _ := math.Lgamma(beta)
	lgVBeta, _ := math.Lgamma(vBeta)
	var ll float64
	for k := 0; k < m.K; k++ {
		ll += lgVBeta - float64(m.V)*lgBeta
		for w := 0; w < m.V; w++ {
			if m.nw[w][k] > 0 {
				lg, _ := math.Lgamma(float64(m.nw[w][k]) + beta)
				ll += lg - lgBeta
			}
		}
		lg, _ := math.Lgamma(float64(m.nwsum[k]) + vBeta)
		ll -= lg - lgVBeta
	}
	return ll
}

// WordTopicCounts returns the n_w,k matrix. Live state; do not mutate.
func (m *Model) WordTopicCounts() [][]int { return m.nw }

// TopicTotals returns the n_k vector. Live state; do not mutate.
func (m *Model) TopicTotals() []int { return m.nwsum }

// String summarizes the fit.
func (m *Model) String() string {
	return fmt.Sprintf("lda.Model{K=%d V=%d D=%d iters=%d}", m.K, m.V, m.D, len(m.IterationTimes))
}
