package knowledge

import (
	"fmt"
	"math"
	"sort"

	"sourcelda/internal/textproc"
)

// DefaultEpsilon is the small positive mass added to every vocabulary word so
// Dirichlet draws stay positive (Definition 3's ε).
const DefaultEpsilon = 0.01

// Article is one knowledge-source document: a label naming the topic and the
// token counts of the article restricted to the corpus vocabulary.
type Article struct {
	// Label is the topic name (e.g. a Wikipedia article title).
	Label string
	// Counts maps corpus word id → occurrences within the article. Words of
	// the article outside the corpus vocabulary are not represented, per
	// Definition 3.
	Counts map[int]int
	// TotalTokens is the in-vocabulary token total (Σ counts).
	TotalTokens int
}

// NewArticle builds an article from a token-id stream.
func NewArticle(label string, words []int) *Article {
	a := &Article{Label: label, Counts: make(map[int]int)}
	for _, w := range words {
		a.Counts[w]++
		a.TotalTokens++
	}
	return a
}

// NewArticleFromText tokenizes text against vocab without growing it (words
// missing from the corpus vocabulary are dropped, per Definition 3) unless
// grow is true.
func NewArticleFromText(label, text string, vocab *textproc.Vocabulary, stop *textproc.Stopwords, grow bool) *Article {
	tokens := textproc.Tokenize(text)
	if stop != nil {
		tokens = stop.Filter(tokens)
	}
	return NewArticle(label, vocab.EncodeTokens(tokens, grow))
}

// Distribution returns the dense source distribution over a vocabulary of
// size v (Definition 2): f(w) = n_w / Σ n. Words absent from the article get
// zero probability. An empty article yields the uniform distribution.
func (a *Article) Distribution(v int) []float64 {
	out := make([]float64, v)
	if a.TotalTokens == 0 {
		u := 1 / float64(v)
		for i := range out {
			out[i] = u
		}
		return out
	}
	inv := 1 / float64(a.TotalTokens)
	for w, n := range a.Counts {
		if w >= 0 && w < v {
			out[w] = float64(n) * inv
		}
	}
	return out
}

// SmoothedDistribution returns the ε-smoothed, renormalized source
// distribution over v words: (n_w + ε) / Σ (n + ε). Unlike Distribution it is
// strictly positive everywhere, which the JS-divergence-based g(λ) estimator
// and EDA's fixed φ both rely on.
func (a *Article) SmoothedDistribution(v int, epsilon float64) []float64 {
	out := make([]float64, v)
	total := float64(a.TotalTokens) + epsilon*float64(v)
	inv := 1 / total
	for w := range out {
		out[w] = epsilon * inv
	}
	for w, n := range a.Counts {
		if w >= 0 && w < v {
			out[w] = (float64(n) + epsilon) * inv
		}
	}
	return out
}

// Hyperparams is the source hyperparameter vector δ of Definition 3 for one
// article over a vocabulary of size V: X_w = n_w + ε, held sparsely.
// Iteration and summation always run in ascending word-id order so that
// floating-point accumulations are bit-for-bit reproducible (Go map order
// is deliberately randomized and would otherwise perturb totals in the last
// ulp, breaking chain reproducibility).
type Hyperparams struct {
	// V is the corpus vocabulary size.
	V int
	// Epsilon is the smoothing mass for absent words.
	Epsilon float64
	// present maps word id → n_w + ε for words occurring in the article.
	present map[int]float64
	// order holds the present word ids in ascending order.
	order []int
}

// Hyperparams derives the δ vector for a vocabulary of size v. Counts for
// ids ≥ v are dropped (they are outside the corpus vocabulary).
func (a *Article) Hyperparams(v int, epsilon float64) *Hyperparams {
	if epsilon <= 0 {
		panic("knowledge: epsilon must be positive")
	}
	h := &Hyperparams{V: v, Epsilon: epsilon, present: make(map[int]float64, len(a.Counts))}
	for w, n := range a.Counts {
		if w >= 0 && w < v {
			h.present[w] = float64(n) + epsilon
			h.order = append(h.order, w)
		}
	}
	sort.Ints(h.order)
	return h
}

// Value returns X_w = n_w + ε.
func (h *Hyperparams) Value(w int) float64 {
	if x, ok := h.present[w]; ok {
		return x
	}
	return h.Epsilon
}

// Sum returns Σ_w X_w over the whole vocabulary, accumulated in word-id
// order for reproducibility.
func (h *Hyperparams) Sum() float64 {
	total := h.Epsilon * float64(h.V-len(h.present))
	for _, w := range h.order {
		total += h.present[w]
	}
	return total
}

// NumPresent returns the number of vocabulary words with article support.
func (h *Hyperparams) NumPresent() int { return len(h.present) }

// PresentWords returns the word ids with article support in ascending
// order. The returned slice is shared; do not modify.
func (h *Hyperparams) PresentWords() []int { return h.order }

// Dense materializes the full δ vector. Intended for small vocabularies
// (tests, the pixel experiments); the samplers use the sparse form.
func (h *Hyperparams) Dense() []float64 {
	out := make([]float64, h.V)
	for w := range out {
		out[w] = h.Epsilon
	}
	for w, x := range h.present {
		out[w] = x
	}
	return out
}

// Pow returns the λ-exponentiated vector δ^e used by the full Source-LDA
// model (§III-C1): each X_w is raised to the power e. As e→0 every entry
// approaches 1 (maximally relaxed prior); at e=1 the prior is the raw
// counts. The total accumulates in word-id order for reproducibility.
func (h *Hyperparams) Pow(e float64) *PoweredDelta {
	p := &PoweredDelta{
		V:        h.V,
		Exponent: e,
		Default:  math.Pow(h.Epsilon, e),
		present:  make(map[int]float64, len(h.present)),
		order:    h.order,
	}
	var sumPresent float64
	for _, w := range h.order {
		v := math.Pow(h.present[w], e)
		p.present[w] = v
		sumPresent += v
	}
	p.Total = sumPresent + p.Default*float64(h.V-len(h.present))
	return p
}

// PoweredDelta is a precomputed δ^e vector with its total, consumed by the
// Gibbs inner loop. Lookups are O(1): one map probe with a shared default
// for the (vast) unsupported portion of the vocabulary.
type PoweredDelta struct {
	// V is the vocabulary size.
	V int
	// Exponent is the power e the base vector was raised to.
	Exponent float64
	// Default is ε^e, the value of every absent word.
	Default float64
	// Total is Σ_w (δ_w)^e over the whole vocabulary.
	Total   float64
	present map[int]float64
	order   []int
}

// Value returns (δ_w)^e.
func (p *PoweredDelta) Value(w int) float64 {
	if x, ok := p.present[w]; ok {
		return x
	}
	return p.Default
}

// NumPresent returns the number of words with article support.
func (p *PoweredDelta) NumPresent() int { return len(p.present) }

// ForEachPresent calls fn for every word with article support with its
// powered value, in ascending word-id order.
func (p *PoweredDelta) ForEachPresent(fn func(w int, v float64)) {
	for _, w := range p.order {
		fn(w, p.present[w])
	}
}

// PresentWords returns the word ids with article support in ascending
// order. The returned slice is shared; do not modify.
func (p *PoweredDelta) PresentWords() []int { return p.order }

// Dense materializes the powered vector (for Dirichlet draws in the
// generative model and for tests).
func (p *PoweredDelta) Dense() []float64 {
	out := make([]float64, p.V)
	for w := range out {
		out[w] = p.Default
	}
	for w, x := range p.present {
		out[w] = x
	}
	return out
}

// Source is an ordered collection of knowledge-source articles — the paper's
// input set of known potential topics (possibly a superset of the topics
// live in the corpus, §III-C3).
type Source struct {
	articles []*Article
	byLabel  map[string]int
}

// NewSource builds a source from articles; labels must be unique.
func NewSource(articles []*Article) (*Source, error) {
	s := &Source{articles: articles, byLabel: make(map[string]int, len(articles))}
	for i, a := range articles {
		if a == nil {
			return nil, fmt.Errorf("knowledge: nil article at index %d", i)
		}
		if _, dup := s.byLabel[a.Label]; dup {
			return nil, fmt.Errorf("knowledge: duplicate article label %q", a.Label)
		}
		s.byLabel[a.Label] = i
	}
	return s, nil
}

// MustNewSource is NewSource that panics on error, for tests and generators
// with known-good inputs.
func MustNewSource(articles []*Article) *Source {
	s, err := NewSource(articles)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of articles (the paper's B when the source is the
// full superset).
func (s *Source) Len() int { return len(s.articles) }

// Article returns the i-th article.
func (s *Source) Article(i int) *Article { return s.articles[i] }

// Articles returns the backing slice; callers must not modify it.
func (s *Source) Articles() []*Article { return s.articles }

// Label returns the label of the i-th article.
func (s *Source) Label(i int) string { return s.articles[i].Label }

// Labels returns all labels in article order.
func (s *Source) Labels() []string {
	out := make([]string, len(s.articles))
	for i, a := range s.articles {
		out[i] = a.Label
	}
	return out
}

// IndexOf returns the article index for a label.
func (s *Source) IndexOf(label string) (int, bool) {
	i, ok := s.byLabel[label]
	return i, ok
}

// Subset returns a new source restricted to the given article indices, in
// the given order.
func (s *Source) Subset(indices []int) *Source {
	arts := make([]*Article, len(indices))
	for i, idx := range indices {
		arts[i] = s.articles[idx]
	}
	return MustNewSource(arts)
}

// Hyperparams derives δ vectors for every article over a vocabulary of size
// v with smoothing ε.
func (s *Source) Hyperparams(v int, epsilon float64) []*Hyperparams {
	out := make([]*Hyperparams, len(s.articles))
	for i, a := range s.articles {
		out[i] = a.Hyperparams(v, epsilon)
	}
	return out
}

// Distributions returns the dense source distributions of every article over
// a vocabulary of size v.
func (s *Source) Distributions(v int) [][]float64 {
	out := make([][]float64, len(s.articles))
	for i, a := range s.articles {
		out[i] = a.Distribution(v)
	}
	return out
}

// SmoothedDistributions returns ε-smoothed dense distributions for every
// article.
func (s *Source) SmoothedDistributions(v int, epsilon float64) [][]float64 {
	out := make([][]float64, len(s.articles))
	for i, a := range s.articles {
		out[i] = a.SmoothedDistribution(v, epsilon)
	}
	return out
}

// WordSets returns, per article, the sorted word ids with article support —
// the "bags of words" the Concept-Topic Model consumes. When topN > 0 the
// set is restricted to the topN most frequent words of the article,
// mirroring the paper's CTM setup ("top 10,000 words by frequency", §IV-C).
func (s *Source) WordSets(v, topN int) [][]int {
	out := make([][]int, len(s.articles))
	for i, a := range s.articles {
		type wc struct{ w, n int }
		items := make([]wc, 0, len(a.Counts))
		for w, n := range a.Counts {
			if w >= 0 && w < v {
				items = append(items, wc{w, n})
			}
		}
		sort.Slice(items, func(x, y int) bool {
			if items[x].n != items[y].n {
				return items[x].n > items[y].n
			}
			return items[x].w < items[y].w
		})
		if topN > 0 && len(items) > topN {
			items = items[:topN]
		}
		ids := make([]int, len(items))
		for j, it := range items {
			ids[j] = it.w
		}
		sort.Ints(ids)
		out[i] = ids
	}
	return out
}
