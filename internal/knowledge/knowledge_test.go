package knowledge

import (
	"math"
	"testing"
	"testing/quick"

	"sourcelda/internal/textproc"
)

func articleFixture() *Article {
	// Words 0..2 present with counts 3, 2, 1; vocab size will be 5.
	return NewArticle("fixture", []int{0, 0, 0, 1, 1, 2})
}

func TestNewArticleCounts(t *testing.T) {
	a := articleFixture()
	if a.TotalTokens != 6 {
		t.Fatalf("total = %d", a.TotalTokens)
	}
	if a.Counts[0] != 3 || a.Counts[1] != 2 || a.Counts[2] != 1 {
		t.Fatalf("counts = %v", a.Counts)
	}
}

func TestDistributionDefinition2(t *testing.T) {
	a := articleFixture()
	d := a.Distribution(5)
	if math.Abs(d[0]-0.5) > 1e-12 || math.Abs(d[1]-1.0/3) > 1e-12 {
		t.Fatalf("distribution = %v", d)
	}
	if d[3] != 0 || d[4] != 0 {
		t.Fatal("absent words must have zero probability")
	}
	var s float64
	for _, x := range d {
		s += x
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("sums to %v", s)
	}
}

func TestDistributionEmptyArticleUniform(t *testing.T) {
	a := NewArticle("empty", nil)
	d := a.Distribution(4)
	for _, x := range d {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("empty article should be uniform, got %v", d)
		}
	}
}

func TestSmoothedDistributionPositive(t *testing.T) {
	a := articleFixture()
	d := a.SmoothedDistribution(5, 0.01)
	var s float64
	for _, x := range d {
		if x <= 0 {
			t.Fatal("smoothed distribution must be strictly positive")
		}
		s += x
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("sums to %v", s)
	}
	if d[0] <= d[3] {
		t.Fatal("present word must outweigh absent word")
	}
}

func TestHyperparamsDefinition3(t *testing.T) {
	a := articleFixture()
	h := a.Hyperparams(5, 0.01)
	if got := h.Value(0); math.Abs(got-3.01) > 1e-12 {
		t.Fatalf("X_0 = %v, want 3.01", got)
	}
	if got := h.Value(4); got != 0.01 {
		t.Fatalf("absent X = %v, want ε", got)
	}
	wantSum := 3.01 + 2.01 + 1.01 + 0.01 + 0.01
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if h.NumPresent() != 3 {
		t.Fatalf("present = %d", h.NumPresent())
	}
	dense := h.Dense()
	for w := 0; w < 5; w++ {
		if dense[w] != h.Value(w) {
			t.Fatalf("dense[%d] = %v != Value %v", w, dense[w], h.Value(w))
		}
	}
}

func TestHyperparamsDropsOutOfVocabCounts(t *testing.T) {
	a := NewArticle("x", []int{0, 7}) // id 7 outside vocab of 5
	h := a.Hyperparams(5, 0.01)
	if h.NumPresent() != 1 {
		t.Fatalf("present = %d, want 1", h.NumPresent())
	}
}

func TestHyperparamsPanicsOnBadEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	articleFixture().Hyperparams(5, 0)
}

func TestPowEndpoints(t *testing.T) {
	h := articleFixture().Hyperparams(5, 0.01)
	// λ = 0: every entry becomes 1 (the paper: "as λ approaches 0 each
	// hyperparameter will approach 1").
	p0 := h.Pow(0)
	for w := 0; w < 5; w++ {
		if math.Abs(p0.Value(w)-1) > 1e-12 {
			t.Fatalf("δ^0[%d] = %v, want 1", w, p0.Value(w))
		}
	}
	if math.Abs(p0.Total-5) > 1e-12 {
		t.Fatalf("total = %v, want V", p0.Total)
	}
	// λ = 1: identical to raw counts.
	p1 := h.Pow(1)
	for w := 0; w < 5; w++ {
		if math.Abs(p1.Value(w)-h.Value(w)) > 1e-12 {
			t.Fatalf("δ^1[%d] = %v, want %v", w, p1.Value(w), h.Value(w))
		}
	}
}

func TestPowTotalMatchesDense(t *testing.T) {
	f := func(e float64) bool {
		e = math.Abs(math.Mod(e, 1))
		h := articleFixture().Hyperparams(5, 0.01)
		p := h.Pow(e)
		var s float64
		for _, x := range p.Dense() {
			s += x
		}
		return math.Abs(s-p.Total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoweredDeltaIterators(t *testing.T) {
	h := articleFixture().Hyperparams(5, 0.01)
	p := h.Pow(0.5)
	if p.NumPresent() != 3 {
		t.Fatalf("present = %d", p.NumPresent())
	}
	seen := map[int]bool{}
	p.ForEachPresent(func(w int, v float64) {
		seen[w] = true
		if math.Abs(v-p.Value(w)) > 1e-15 {
			t.Fatalf("iterator value mismatch at %d", w)
		}
	})
	if len(seen) != 3 {
		t.Fatalf("iterated %d words", len(seen))
	}
	if got := len(p.PresentWords()); got != 3 {
		t.Fatalf("PresentWords len = %d", got)
	}
}

func TestSourceConstruction(t *testing.T) {
	a := NewArticle("A", []int{0})
	b := NewArticle("B", []int{1})
	s, err := NewSource([]*Article{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Label(1) != "B" {
		t.Fatalf("label = %q", s.Label(1))
	}
	if i, ok := s.IndexOf("A"); !ok || i != 0 {
		t.Fatalf("IndexOf(A) = %d, %v", i, ok)
	}
	if _, ok := s.IndexOf("missing"); ok {
		t.Fatal("missing label found")
	}
	labels := s.Labels()
	if labels[0] != "A" || labels[1] != "B" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSourceRejectsDuplicatesAndNil(t *testing.T) {
	a := NewArticle("A", []int{0})
	if _, err := NewSource([]*Article{a, NewArticle("A", []int{1})}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
	if _, err := NewSource([]*Article{a, nil}); err == nil {
		t.Fatal("nil article accepted")
	}
}

func TestSourceSubset(t *testing.T) {
	s := MustNewSource([]*Article{
		NewArticle("A", []int{0}),
		NewArticle("B", []int{1}),
		NewArticle("C", []int{2}),
	})
	sub := s.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.Label(0) != "C" || sub.Label(1) != "A" {
		t.Fatalf("subset labels: %v", sub.Labels())
	}
}

func TestSourceBulkDerivations(t *testing.T) {
	s := MustNewSource([]*Article{articleFixture()})
	hs := s.Hyperparams(5, 0.01)
	if len(hs) != 1 || hs[0].NumPresent() != 3 {
		t.Fatal("hyperparams derivation broken")
	}
	ds := s.Distributions(5)
	if len(ds) != 1 || math.Abs(ds[0][0]-0.5) > 1e-12 {
		t.Fatal("distributions derivation broken")
	}
	sm := s.SmoothedDistributions(5, 0.01)
	if len(sm) != 1 || sm[0][4] <= 0 {
		t.Fatal("smoothed distributions broken")
	}
}

func TestWordSets(t *testing.T) {
	s := MustNewSource([]*Article{articleFixture()})
	all := s.WordSets(5, 0)
	if len(all[0]) != 3 {
		t.Fatalf("full set = %v", all[0])
	}
	top2 := s.WordSets(5, 2)
	if len(top2[0]) != 2 {
		t.Fatalf("top-2 set = %v", top2[0])
	}
	// Top-2 by frequency are words 0 (count 3) and 1 (count 2); sorted ids.
	if top2[0][0] != 0 || top2[0][1] != 1 {
		t.Fatalf("top-2 = %v, want [0 1]", top2[0])
	}
}

func TestNewArticleFromText(t *testing.T) {
	v := textproc.NewVocabulary()
	v.Add("pencil")
	// Non-growing: words outside the corpus vocabulary are dropped per
	// Definition 3.
	a := NewArticleFromText("School", "pencil pencil ruler", v, nil, false)
	if a.TotalTokens != 2 {
		t.Fatalf("tokens = %d, want 2 (ruler dropped)", a.TotalTokens)
	}
	// Growing: ruler interned.
	b := NewArticleFromText("School2", "pencil ruler", v, nil, true)
	if b.TotalTokens != 2 || v.Size() != 2 {
		t.Fatalf("grow failed: tokens=%d vocab=%d", b.TotalTokens, v.Size())
	}
}
