// Package knowledge implements the paper's knowledge-source machinery
// (PAPER.md §II–III): labeled articles describing potential topics
// (Definition 1), their source word distributions over the corpus
// vocabulary (Definition 2), and the source hyperparameter vectors
// δ = (X_1 … X_V) with X_i = n_wi + ε (Definition 3), including the
// λ-exponentiated form δ^g(λ) the full Source-LDA model uses to let a
// topic deviate from its source in a controlled way (§III-C).
//
// This is the package that makes Source-LDA "source"-LDA: instead of the
// symmetric Dirichlet priors of plain LDA, each known topic's prior is
// built from a real article's word counts, so inferred topics arrive
// labeled and consistent with prior knowledge. Wikipedia-style article
// sets are the intended input; sourcelda.CorpusBuilder.AddKnowledgeArticle
// is the public path in, and internal/synth generates encyclopedia-shaped
// sources for the experiments.
//
// Hyperparameter vectors are held sparsely: an article mentions a small
// subset of the corpus vocabulary, and every absent word contributes only
// the smoothing mass ε. The Gibbs samplers therefore look up per-word
// values through a map with a shared default, and the powered sums
// Σ_a (δ_a)^g(λ) close over the analytic form
// Σ_present (n+ε)^g(λ) + (V − present)·ε^g(λ) — the identity
// internal/core/deltastore.go flattens into CSR arrays for the hot path.
//
// Because knowledge sources evolve (articles get edited, topic sets
// grow), a trained model embeds everything it needs from its source into
// the serving bundle (internal/persist); the serving registry
// (internal/registry) then hot-swaps retrained bundles without downtime.
package knowledge
