// Package smoothing estimates the paper's λ-linearization function g
// (§III-C2, Figs. 3 and 4). Raising source hyperparameters to a power λ
// moves the Jensen–Shannon divergence between a Dirichlet draw and the
// source distribution nonlinearly (Fig. 3), which mismatches the Gaussian
// prior placed over λ. g remaps λ so the expected JS divergence changes
// linearly in λ (Fig. 4). Following the paper, g is approximated by linear
// interpolation over aggregated samples taken on a grid in [0, 1].
package smoothing

import (
	"math"

	"sourcelda/internal/knowledge"
	"sourcelda/internal/mathx"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
)

// Config controls the Monte-Carlo estimation of the JS-divergence curve.
type Config struct {
	// GridPoints is the number of λ grid points spanning [0, 1]. Minimum 2;
	// default 11 (steps of 0.1, matching Fig. 3's axis).
	GridPoints int
	// Samples is the number of Dirichlet draws aggregated per grid point.
	// Default 30.
	Samples int
	// Seed seeds the estimator's private generator.
	Seed int64
	// MeanField, when true, replaces Monte-Carlo sampling with the
	// deterministic mean-field approximation: the expected Dirichlet draw is
	// the normalized parameter vector, so JS(normalize(δ^λ), source) is used
	// directly. This is orders of magnitude faster and preserves the curve's
	// shape; the ablation tests compare both.
	MeanField bool
}

func (c Config) withDefaults() Config {
	if c.GridPoints < 2 {
		c.GridPoints = 11
	}
	if c.Samples <= 0 {
		c.Samples = 30
	}
	return c
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config { return Config{GridPoints: 11, Samples: 30} }

// G is the estimated linearization function for one knowledge-source topic.
// Eval maps a λ in [0, 1] to the exponent that produces a linearly-changing
// JS divergence.
type G struct {
	grid []float64 // λ grid points, ascending
	gval []float64 // g(grid[i])
	js   []float64 // estimated JS divergence at exponent grid[i] (monotone non-increasing)
}

// Identity returns the identity mapping g(λ) = λ, used when smoothing is
// disabled.
func Identity() *G {
	return &G{
		grid: []float64{0, 1},
		gval: []float64{0, 1},
		js:   []float64{math.Log(2), 0},
	}
}

// Estimate builds g for the topic whose hyperparameters are h and whose
// source distribution is src (dense, length h.V).
//
// The construction follows §III-C2: (1) estimate the mean JS divergence
// J(x) between Dir(δ^x) draws and the source distribution on a grid of
// exponents x; (2) force monotonicity (J decreases as x grows); (3) define
// the linear target L(λ) = J(0) + λ·(J(1) − J(0)) and set
// g(λ) = J⁻¹(L(λ)) by inverse linear interpolation.
func Estimate(h *knowledge.Hyperparams, src []float64, cfg Config) *G {
	cfg = cfg.withDefaults()
	n := cfg.GridPoints
	grid := make([]float64, n)
	js := make([]float64, n)
	r := rng.New(cfg.Seed)
	draw := make([]float64, h.V)
	for i := 0; i < n; i++ {
		grid[i] = float64(i) / float64(n-1)
		alpha := h.Pow(grid[i]).Dense()
		if cfg.MeanField {
			js[i] = stats.JSDivergence(mathx.Normalized(alpha), src)
			continue
		}
		var total float64
		for s := 0; s < cfg.Samples; s++ {
			r.Dirichlet(alpha, draw)
			total += stats.JSDivergence(draw, src)
		}
		js[i] = total / float64(cfg.Samples)
	}
	// Enforce a non-increasing curve: Monte-Carlo noise can produce small
	// local bumps that would break the inversion.
	for i := 1; i < n; i++ {
		if js[i] > js[i-1] {
			js[i] = js[i-1]
		}
	}
	g := &G{grid: grid, js: js, gval: make([]float64, n)}
	j0, j1 := js[0], js[n-1]
	if j0 == j1 {
		// Degenerate flat curve (e.g. near-uniform source): identity map.
		copy(g.gval, grid)
		return g
	}
	for i := 0; i < n; i++ {
		target := j0 + grid[i]*(j1-j0)
		g.gval[i] = mathx.Clamp(mathx.InvertMonotone(grid, js, target), 0, 1)
	}
	// Pin the endpoints exactly: g(0)=0 and g(1)=1 by construction.
	g.gval[0] = 0
	g.gval[n-1] = 1
	// g must be non-decreasing for the downstream quadrature grid.
	for i := 1; i < n; i++ {
		if g.gval[i] < g.gval[i-1] {
			g.gval[i] = g.gval[i-1]
		}
	}
	return g
}

// Eval returns g(λ), clamping λ to [0, 1].
func (g *G) Eval(lambda float64) float64 {
	return mathx.InterpolateMonotone(g.grid, g.gval, mathx.Clamp(lambda, 0, 1))
}

// JSAt returns the estimated JS divergence at raw exponent x (the Fig. 3
// curve).
func (g *G) JSAt(x float64) float64 {
	return mathx.InterpolateMonotone(g.grid, g.js, mathx.Clamp(x, 0, 1))
}

// Grid returns copies of the λ grid and the g values at the grid points.
func (g *G) Grid() (lambdas, gvals []float64) {
	l := make([]float64, len(g.grid))
	v := make([]float64, len(g.gval))
	copy(l, g.grid)
	copy(v, g.gval)
	return l, v
}

// JSCurve returns copies of the λ grid and the estimated JS divergences.
func (g *G) JSCurve() (lambdas, js []float64) {
	l := make([]float64, len(g.grid))
	v := make([]float64, len(g.js))
	copy(l, g.grid)
	copy(v, g.js)
	return l, v
}

// Linearity measures how linear a curve ys over xs is: it returns the
// maximum absolute deviation between ys and the straight line through its
// endpoints, normalized by the endpoint gap. Smaller is more linear; the
// smoothing tests assert g reduces this metric versus the raw curve.
func Linearity(xs, ys []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	y0, y1 := ys[0], ys[n-1]
	gap := math.Abs(y1 - y0)
	if gap == 0 {
		return 0
	}
	var worst float64
	for i := range xs {
		t := (xs[i] - xs[0]) / (xs[n-1] - xs[0])
		lin := y0 + t*(y1-y0)
		if d := math.Abs(ys[i] - lin); d > worst {
			worst = d
		}
	}
	return worst / gap
}

// SampleJSBoxData reproduces the data behind Figs. 3 and 4: for each λ in
// lambdas it draws samples from Dir(δ^exponent(λ)) and returns the JS
// divergences to the source distribution, where exponent is the identity for
// the raw figure and g.Eval for the smoothed one.
func SampleJSBoxData(h *knowledge.Hyperparams, src []float64, lambdas []float64, samples int, exponent func(float64) float64, seed int64) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, len(lambdas))
	draw := make([]float64, h.V)
	for i, l := range lambdas {
		alpha := h.Pow(exponent(l)).Dense()
		vals := make([]float64, samples)
		for s := 0; s < samples; s++ {
			r.Dirichlet(alpha, draw)
			vals[s] = stats.JSDivergence(draw, src)
		}
		out[i] = vals
	}
	return out
}
