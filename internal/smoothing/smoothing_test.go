package smoothing

import (
	"math"
	"testing"

	"sourcelda/internal/knowledge"
)

// fixtureTopic builds a peaked article (Zipf-ish counts) over a 50-word
// vocabulary and returns its hyperparameters and smoothed distribution.
func fixtureTopic(t *testing.T) (*knowledge.Hyperparams, []float64) {
	t.Helper()
	var words []int
	for w := 0; w < 20; w++ {
		for c := 0; c < 40/(w+1)+1; c++ {
			words = append(words, w)
		}
	}
	a := knowledge.NewArticle("fixture", words)
	const v = 50
	return a.Hyperparams(v, knowledge.DefaultEpsilon), a.SmoothedDistribution(v, knowledge.DefaultEpsilon)
}

func TestIdentity(t *testing.T) {
	g := Identity()
	for _, l := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := g.Eval(l); math.Abs(got-l) > 1e-12 {
			t.Fatalf("Identity(%v) = %v", l, got)
		}
	}
}

func TestEstimateEndpoints(t *testing.T) {
	h, src := fixtureTopic(t)
	g := Estimate(h, src, Config{GridPoints: 11, Samples: 20, Seed: 1})
	if got := g.Eval(0); got != 0 {
		t.Fatalf("g(0) = %v, want 0", got)
	}
	if got := g.Eval(1); got != 1 {
		t.Fatalf("g(1) = %v, want 1", got)
	}
}

func TestEstimateMonotone(t *testing.T) {
	h, src := fixtureTopic(t)
	for _, meanField := range []bool{false, true} {
		g := Estimate(h, src, Config{GridPoints: 11, Samples: 20, Seed: 2, MeanField: meanField})
		prev := -1.0
		for l := 0.0; l <= 1.0001; l += 0.05 {
			v := g.Eval(l)
			if v < prev-1e-12 {
				t.Fatalf("meanField=%v: g not monotone at λ=%v (%v < %v)", meanField, l, v, prev)
			}
			if v < 0 || v > 1 {
				t.Fatalf("g(%v) = %v outside [0,1]", l, v)
			}
			prev = v
		}
	}
}

func TestJSCurveDecreasing(t *testing.T) {
	// Fig. 3's premise: JS divergence decreases as the exponent grows.
	h, src := fixtureTopic(t)
	g := Estimate(h, src, Config{GridPoints: 11, Samples: 30, Seed: 3})
	_, js := g.JSCurve()
	if js[0] <= js[len(js)-1] {
		t.Fatalf("JS(0)=%v should exceed JS(1)=%v", js[0], js[len(js)-1])
	}
	for i := 1; i < len(js); i++ {
		if js[i] > js[i-1]+1e-12 {
			t.Fatalf("JS curve not non-increasing at %d", i)
		}
	}
}

func TestSmoothingLinearizesJS(t *testing.T) {
	// Fig. 4's claim: mapping λ through g makes the JS-vs-λ curve linear.
	// Compare the linearity metric of the raw curve against the composed
	// curve JS(g(λ)).
	h, src := fixtureTopic(t)
	g := Estimate(h, src, Config{GridPoints: 15, Samples: 60, Seed: 4})
	lambdas, rawJS := g.JSCurve()
	composed := make([]float64, len(lambdas))
	for i, l := range lambdas {
		composed[i] = g.JSAt(g.Eval(l))
	}
	rawLin := Linearity(lambdas, rawJS)
	smoothLin := Linearity(lambdas, composed)
	if smoothLin > rawLin {
		t.Fatalf("smoothing increased nonlinearity: raw %v vs smoothed %v", rawLin, smoothLin)
	}
	if smoothLin > 0.05 {
		t.Fatalf("smoothed curve should be nearly linear, deviation %v", smoothLin)
	}
}

func TestMeanFieldCloseToMonteCarlo(t *testing.T) {
	// The ablation claim from DESIGN.md: the deterministic mean-field
	// estimator preserves the curve's shape. Compare g values pointwise.
	h, src := fixtureTopic(t)
	mc := Estimate(h, src, Config{GridPoints: 11, Samples: 80, Seed: 5})
	mf := Estimate(h, src, Config{GridPoints: 11, Seed: 5, MeanField: true})
	var worst float64
	for l := 0.0; l <= 1.0; l += 0.1 {
		d := math.Abs(mc.Eval(l) - mf.Eval(l))
		if d > worst {
			worst = d
		}
	}
	// Mean-field ignores Dirichlet sampling noise so some gap is expected,
	// but the curves must stay broadly aligned.
	if worst > 0.35 {
		t.Fatalf("mean-field deviates from Monte Carlo by %v", worst)
	}
}

func TestFlatCurveFallsBackToIdentity(t *testing.T) {
	// A uniform article: Dir(δ^λ) is statistically identical for all λ at
	// the mean-field level, so g should be the identity.
	words := make([]int, 50)
	for w := range words {
		words[w] = w
	}
	a := knowledge.NewArticle("uniform", words)
	h := a.Hyperparams(50, knowledge.DefaultEpsilon)
	src := a.SmoothedDistribution(50, knowledge.DefaultEpsilon)
	g := Estimate(h, src, Config{GridPoints: 5, MeanField: true, Seed: 6})
	for _, l := range []float64{0, 0.5, 1} {
		if got := g.Eval(l); math.Abs(got-l) > 0.3 {
			t.Fatalf("flat-curve g(%v) = %v, too far from identity", l, got)
		}
	}
}

func TestEvalClamps(t *testing.T) {
	h, src := fixtureTopic(t)
	g := Estimate(h, src, Config{GridPoints: 5, MeanField: true, Seed: 7})
	if got := g.Eval(-1); got != g.Eval(0) {
		t.Fatalf("Eval(-1) = %v, want Eval(0)", got)
	}
	if got := g.Eval(2); got != g.Eval(1) {
		t.Fatalf("Eval(2) = %v, want Eval(1)", got)
	}
}

func TestLinearityMetric(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	if got := Linearity(xs, []float64{0, 0.5, 1}); got != 0 {
		t.Fatalf("straight line linearity = %v", got)
	}
	if got := Linearity(xs, []float64{0, 0.9, 1}); got < 0.3 {
		t.Fatalf("bent curve linearity = %v, want ≥ 0.3", got)
	}
	if got := Linearity(xs, []float64{1, 1, 1}); got != 0 {
		t.Fatalf("flat curve = %v, want 0 (degenerate)", got)
	}
}

func TestSampleJSBoxData(t *testing.T) {
	h, src := fixtureTopic(t)
	lambdas := []float64{0, 0.5, 1}
	data := SampleJSBoxData(h, src, lambdas, 25, func(x float64) float64 { return x }, 8)
	if len(data) != 3 {
		t.Fatalf("rows = %d", len(data))
	}
	for i, row := range data {
		if len(row) != 25 {
			t.Fatalf("row %d has %d samples", i, len(row))
		}
		for _, js := range row {
			if js < 0 || js > math.Log(2) {
				t.Fatalf("JS %v out of range", js)
			}
		}
	}
	// Mean at λ=1 must be below mean at λ=0 (tighter conformance).
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(data[2]) >= mean(data[0]) {
		t.Fatalf("JS at λ=1 (%v) should be below λ=0 (%v)", mean(data[2]), mean(data[0]))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.GridPoints != 11 || c.Samples != 30 {
		t.Fatalf("defaults = %+v", c)
	}
}
