package dtrain

import (
	"fmt"
	"hash/fnv"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
)

// ChainSpec is the JSON-able chain configuration the coordinator ships to
// every worker inside the assign message. It mirrors the chain-shaping
// fields of core.Options — enums as their String() names so the wire form
// is self-describing — and deliberately omits the in-inference pruning
// knobs: pruning resamples tokens of locally-dead topics, which under a
// nonzero external overlay would judge topics by other shards' counts, so
// distributed runs keep the full topic set and prune offline if desired.
//
// Seed is the run's base seed; worker shard i trains with Seed+i, which
// makes shard 0 of a 1-worker run the serial chain's seed exactly.
type ChainSpec struct {
	NumFreeTopics       int     `json:"num_free_topics"`
	Alpha               float64 `json:"alpha,omitempty"`
	Beta                float64 `json:"beta,omitempty"`
	Epsilon             float64 `json:"epsilon,omitempty"`
	LambdaMode          string  `json:"lambda_mode,omitempty"` // "fixed" | "integrated"
	Lambda              float64 `json:"lambda,omitempty"`
	Mu                  float64 `json:"mu,omitempty"`
	Sigma               float64 `json:"sigma,omitempty"`
	QuadraturePoints    int     `json:"quadrature_points,omitempty"`
	LambdaBurnIn        int     `json:"lambda_burn_in,omitempty"`
	FreezeLambdaWeights bool    `json:"freeze_lambda_weights,omitempty"`
	UseSmoothing        bool    `json:"use_smoothing,omitempty"`
	Sampler             string  `json:"sampler,omitempty"`    // "serial" | "simple-parallel" | "prefix-sums" | "sparse"
	SweepMode           string  `json:"sweep_mode,omitempty"` // "sequential" | "sharded-docs"
	Shards              int     `json:"shards,omitempty"`     // in-worker document shards (SweepShardedDocs)
	Threads             int     `json:"threads,omitempty"`
	Seed                int64   `json:"seed"`
}

// ParseSampler maps a sampler kernel name (the SamplerKind.String() values;
// "" means serial) to its core constant.
func ParseSampler(name string) (core.SamplerKind, error) {
	switch name {
	case "", core.SamplerSerial.String():
		return core.SamplerSerial, nil
	case core.SamplerSimpleParallel.String():
		return core.SamplerSimpleParallel, nil
	case core.SamplerPrefixSums.String():
		return core.SamplerPrefixSums, nil
	case core.SamplerSparse.String():
		return core.SamplerSparse, nil
	default:
		return 0, fmt.Errorf("dtrain: unknown sampler kernel %q (serial, simple-parallel, prefix-sums, sparse)", name)
	}
}

// ParseSweepMode maps a sweep mode name ("" means sequential) to its core
// constant.
func ParseSweepMode(name string) (core.SweepMode, error) {
	switch name {
	case "", core.SweepSequential.String():
		return core.SweepSequential, nil
	case core.SweepShardedDocs.String():
		return core.SweepShardedDocs, nil
	default:
		return 0, fmt.Errorf("dtrain: unknown sweep mode %q (sequential, sharded-docs)", name)
	}
}

// Options converts the spec to core.Options with the given chain seed.
// Iterations is left at its default: dtrain drives sweep counts explicitly
// through the epoch schedule, and core excludes Iterations from the chain
// digest for exactly this reason.
func (s ChainSpec) Options(seed int64) (core.Options, error) {
	lm := core.LambdaIntegrated
	switch s.LambdaMode {
	case "", core.LambdaIntegrated.String():
	case core.LambdaFixed.String():
		lm = core.LambdaFixed
	default:
		return core.Options{}, fmt.Errorf("dtrain: unknown lambda mode %q (fixed, integrated)", s.LambdaMode)
	}
	sampler, err := ParseSampler(s.Sampler)
	if err != nil {
		return core.Options{}, err
	}
	mode, err := ParseSweepMode(s.SweepMode)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		NumFreeTopics:       s.NumFreeTopics,
		Alpha:               s.Alpha,
		Beta:                s.Beta,
		Epsilon:             s.Epsilon,
		LambdaMode:          lm,
		Lambda:              s.Lambda,
		Mu:                  s.Mu,
		Sigma:               s.Sigma,
		QuadraturePoints:    s.QuadraturePoints,
		LambdaBurnIn:        s.LambdaBurnIn,
		FreezeLambdaWeights: s.FreezeLambdaWeights,
		UseSmoothing:        s.UseSmoothing,
		Sampler:             sampler,
		SweepMode:           mode,
		Shards:              s.Shards,
		Threads:             s.Threads,
		Seed:                seed,
	}, nil
}

// ShardRange returns document shard i's contiguous range [lo, hi) of an
// n-way partition over D documents — the same n-balanced split core uses
// for in-process shards, so partition boundaries are a pure function of
// (D, n, i).
func ShardRange(D, n, i int) (lo, hi int) {
	return i * D / n, (i + 1) * D / n
}

// CorpusDigest fingerprints a corpus — dimensions, document lengths and
// every word id — so coordinator and workers can verify they loaded the
// same data before training instead of diverging silently. FNV-1a, stable
// across runs and platforms.
func CorpusDigest(c *corpus.Corpus) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeU64(uint64(c.NumDocs()))
	writeU64(uint64(c.VocabSize()))
	for _, doc := range c.Docs {
		writeU64(uint64(len(doc.Words)))
		for _, w := range doc.Words {
			writeU64(uint64(w))
		}
	}
	return h.Sum64()
}
