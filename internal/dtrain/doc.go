// Package dtrain trains one Source-LDA chain across multiple worker
// processes with approximate-distributed (AD-LDA) semantics: a coordinator
// partitions the corpus into contiguous document shards, each worker runs
// local Gibbs sweeps over its shard against the last merged global
// topic-word counts, and at every sync boundary (an "epoch" of
// Staleness sweeps) the coordinator merges the workers' count deltas and
// redistributes the merged slab.
//
// The protocol is barrier-synchronous and deterministic: epoch e's global
// counts are a pure function of the seed, the partition, and the staleness —
// never of worker scheduling or failures. Every worker checkpoints its chain
// at each sync boundary BEFORE sending its delta, so when a worker dies the
// coordinator hands its shard to a replacement, which restores the exact
// boundary checkpoint and replays the lost epoch bit-for-bit. A completed
// run therefore produces the same model whether or not workers were lost —
// and a 1-worker run, whose external-counts overlay is identically zero, is
// bit-identical to the serial chain (see core.SetGlobalCounts).
//
// Transport is the persist CRC frame (8-byte magic, version, length,
// payload, CRC-32) per message, over anything that satisfies net.Conn —
// TCP between real processes (cmd/srcldactl) or net.Pipe inside one process
// (dtraintest). Every corruption mode fails loudly: a flipped bit fails the
// CRC, a truncated stream fails the length read, and both count as a worker
// failure that triggers reassignment, never silent count corruption.
package dtrain
