package dtrain

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sourcelda/internal/obs"
)

// EpochEvent is one line of the coordinator's telemetry JSONL: everything
// known about a sync epoch at the moment its merge completed.
type EpochEvent struct {
	// Time is when the epoch's merge finished.
	Time time.Time `json:"time"`
	// Epoch is the 1-based sync boundary index; Epochs the configured total.
	Epoch  int `json:"epoch"`
	Epochs int `json:"epochs"`
	// Workers is the shard count; Staleness the local sweeps per epoch.
	Workers   int `json:"workers"`
	Staleness int `json:"staleness"`
	// EpochSeconds is wall time from broadcast to merged.
	EpochSeconds float64 `json:"epoch_seconds"`
	// MergeBytes is the total delta payload merged this epoch.
	MergeBytes int64 `json:"merge_bytes"`
	// WorkerLagSeconds is the spread between the first and last shard delta
	// arriving — the straggler gap.
	WorkerLagSeconds float64 `json:"worker_lag_seconds"`
	// TokensPerSec is the epoch's aggregate sampling throughput (corpus
	// tokens × staleness / epoch seconds).
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`
	// Reassigned counts shards handed to replacement workers during this
	// epoch.
	Reassigned int `json:"reassigned,omitempty"`
}

// Metrics aggregates coordinator telemetry into the two standard surfaces:
// an EpochEvent JSONL log and a Prometheus handler exposing srcldactl_*
// series. A nil *Metrics is valid and records nothing.
type Metrics struct {
	mu             sync.Mutex
	out            io.Writer
	last           EpochEvent
	epochs         uint64
	mergeBytes     int64
	framesRejected uint64
	workerFailures uint64
	err            error

	epochLatency *obs.Histogram
}

// NewMetrics builds a Metrics writing JSONL epoch events to out (nil for
// metrics-only).
func NewMetrics(out io.Writer) *Metrics {
	return &Metrics{out: out, epochLatency: obs.NewHistogram(obs.DefaultLatencyBuckets())}
}

// RecordEpoch appends one epoch event to the JSONL log and updates the
// Prometheus gauges.
func (m *Metrics) RecordEpoch(ev EpochEvent) {
	if m == nil {
		return
	}
	m.epochLatency.Observe(ev.EpochSeconds)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.last = ev
	m.epochs++
	m.mergeBytes += ev.MergeBytes
	if m.out == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		b = append(b, '\n')
		_, err = m.out.Write(b)
	}
	if err != nil && m.err == nil {
		m.err = err
	}
}

// EpochsMerged returns how many sync epochs this coordinator has merged.
func (m *Metrics) EpochsMerged() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochs
}

// NoteFrameRejected counts a wire frame refused for corruption (bad magic,
// checksum mismatch, length lies, unknown kind).
func (m *Metrics) NoteFrameRejected() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.framesRejected++
	m.mu.Unlock()
}

// FramesRejected returns how many corrupt frames were refused.
func (m *Metrics) FramesRejected() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.framesRejected
}

// NoteWorkerFailure counts a worker lost to any cause — connection error,
// deadline, corrupt frame — each of which triggers shard reassignment.
func (m *Metrics) NoteWorkerFailure() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.workerFailures++
	m.mu.Unlock()
}

// WorkerFailures returns how many workers were lost and replaced.
func (m *Metrics) WorkerFailures() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workerFailures
}

// Err returns the first JSONL write error, if any; telemetry never aborts
// training.
func (m *Metrics) Err() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// WritePrometheus renders the coordinator's state as srcldactl_* series.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	last, epochs, mergeBytes := m.last, m.epochs, m.mergeBytes
	rejected, failures := m.framesRejected, m.workerFailures
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP srcldactl_epoch Last merged sync epoch (1-based).\n")
	fmt.Fprintf(w, "# TYPE srcldactl_epoch gauge\n")
	fmt.Fprintf(w, "srcldactl_epoch %d\n", last.Epoch)
	fmt.Fprintf(w, "# HELP srcldactl_epochs_total Sync epochs merged by this coordinator.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_epochs_total counter\n")
	fmt.Fprintf(w, "srcldactl_epochs_total %d\n", epochs)
	fmt.Fprintf(w, "# HELP srcldactl_workers Configured worker (shard) count.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_workers gauge\n")
	fmt.Fprintf(w, "srcldactl_workers %d\n", last.Workers)
	fmt.Fprintf(w, "# HELP srcldactl_staleness Local sweeps between sync boundaries.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_staleness gauge\n")
	fmt.Fprintf(w, "srcldactl_staleness %d\n", last.Staleness)
	fmt.Fprintf(w, "# HELP srcldactl_merge_bytes_total Delta payload bytes merged.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_merge_bytes_total counter\n")
	fmt.Fprintf(w, "srcldactl_merge_bytes_total %d\n", mergeBytes)
	fmt.Fprintf(w, "# HELP srcldactl_worker_lag_seconds Straggler gap of the last epoch (first to last delta).\n")
	fmt.Fprintf(w, "# TYPE srcldactl_worker_lag_seconds gauge\n")
	fmt.Fprintf(w, "srcldactl_worker_lag_seconds %g\n", last.WorkerLagSeconds)
	fmt.Fprintf(w, "# HELP srcldactl_tokens_per_sec Aggregate sampling throughput of the last epoch.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_tokens_per_sec gauge\n")
	fmt.Fprintf(w, "srcldactl_tokens_per_sec %g\n", last.TokensPerSec)
	fmt.Fprintf(w, "# HELP srcldactl_frames_rejected_total Corrupt wire frames refused.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_frames_rejected_total counter\n")
	fmt.Fprintf(w, "srcldactl_frames_rejected_total %d\n", rejected)
	fmt.Fprintf(w, "# HELP srcldactl_worker_failures_total Workers lost and replaced.\n")
	fmt.Fprintf(w, "# TYPE srcldactl_worker_failures_total counter\n")
	fmt.Fprintf(w, "srcldactl_worker_failures_total %d\n", failures)
	m.epochLatency.Snapshot().WritePrometheus(w, "srcldactl_epoch_seconds", "")
	obs.WriteRuntimeMetrics(w, "srcldactl", -1)
}

// Handler serves WritePrometheus over HTTP.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}
