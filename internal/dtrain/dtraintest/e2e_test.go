package dtraintest

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"sourcelda/internal/dtrain"
)

const waitTimeout = 60 * time.Second

// runClean trains an uninterrupted cluster and returns its result — the
// reference digest every fault test must reproduce.
func runClean(t *testing.T, opts Options) *dtrain.Result {
	t.Helper()
	cl := New(t, opts)
	for i := 0; i < opts.Workers; i++ {
		cl.StartWorker()
	}
	res, err := cl.Wait(waitTimeout)
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v\nlogs:\n%s", err, cl.Logs())
	}
	cl.Close()
	return res
}

// waitEpochsMerged polls until the coordinator has merged at least n sync
// epochs — the hook fault tests use to strike mid-run, after state exists
// to resume from.
func waitEpochsMerged(t *testing.T, cl *Cluster, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for cl.Metrics().EpochsMerged() < n {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never merged %d epochs; logs:\n%s", n, cl.Logs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKillAndResume is the acceptance e2e: a worker killed mid-epoch is
// replaced, the replacement resumes the shard from its last sync-boundary
// checkpoint, and the finished model is BIT-IDENTICAL to an uninterrupted
// run at the same staleness — verified by digest. Runs under -race in CI.
func TestKillAndResume(t *testing.T) {
	base := runtime.NumGoroutine()
	opts := Options{Workers: 2, Epochs: 3, Staleness: 2}
	want := runClean(t, opts)

	cl := New(t, opts)
	cl.StartWorker()
	victim := cl.StartWorker()
	// Slow the victim so epochs take long enough that the kill reliably
	// lands mid-run; slowness itself must not perturb the chain.
	victim.SetReadDelay(30 * time.Millisecond)
	waitEpochsMerged(t, cl, 1)
	victim.Kill()
	cl.StartWorker() // replacement

	res, err := cl.Wait(waitTimeout)
	if err != nil {
		t.Fatalf("killed run failed: %v\nlogs:\n%s", err, cl.Logs())
	}
	if res.Digest != want.Digest {
		t.Fatalf("kill-and-resume digest %#x differs from uninterrupted digest %#x\nlogs:\n%s",
			res.Digest, want.Digest, cl.Logs())
	}
	if got := cl.Metrics().WorkerFailures(); got < 1 {
		t.Fatalf("worker failures = %d, want >= 1 (was the victim killed after the run?)", got)
	}
	if !strings.Contains(cl.Logs(), "dtrain worker lost") {
		t.Fatalf("worker loss was not logged; logs:\n%s", cl.Logs())
	}
	cl.Close()
	CheckGoroutines(t, base)
}

// TestCorruptedFrameRejected injects a bit flip into a worker's count-slab
// frame. The coordinator must reject the frame loudly — counted, logged —
// replace the worker, and still converge to the uninterrupted digest:
// corruption costs a retry, never silent count damage.
func TestCorruptedFrameRejected(t *testing.T) {
	opts := Options{Workers: 2, Epochs: 2, Staleness: 1}
	want := runClean(t, opts)

	cl := New(t, opts)
	saboteur := cl.StartWorker()
	saboteur.CorruptNextLargeWrite()
	cl.StartWorker()
	// Only start the spare once the corrupt frame has been refused, so the
	// saboteur is guaranteed a shard (otherwise the spare can win the join
	// race and the armed fault never fires).
	deadline := time.Now().Add(30 * time.Second)
	for cl.Metrics().FramesRejected() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never rejected the corrupted frame; logs:\n%s", cl.Logs())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cl.StartWorker() // spare picks up the rejected worker's shard

	res, err := cl.Wait(waitTimeout)
	if err != nil {
		t.Fatalf("run with corrupted frame failed: %v\nlogs:\n%s", err, cl.Logs())
	}
	if res.Digest != want.Digest {
		t.Fatalf("digest after frame corruption %#x differs from clean digest %#x", res.Digest, want.Digest)
	}
	if got := cl.Metrics().FramesRejected(); got < 1 {
		t.Fatalf("frames rejected = %d, want >= 1; logs:\n%s", got, cl.Logs())
	}
	if !strings.Contains(cl.Logs(), "corrupt-frame") {
		t.Fatalf("frame rejection was not logged loudly; logs:\n%s", cl.Logs())
	}
}

// TestHungWorkerReplaced parks a worker in a hang (connected, silent). The
// coordinator's deadlines must detect it, hand the shard to a spare, and
// finish with the uninterrupted digest.
func TestHungWorkerReplaced(t *testing.T) {
	opts := Options{
		Workers: 2, Epochs: 3, Staleness: 1,
		IOTimeout:    500 * time.Millisecond,
		EpochTimeout: time.Second,
	}
	want := runClean(t, opts)

	cl := New(t, opts)
	cl.StartWorker()
	sleeper := cl.StartWorker()
	sleeper.SetReadDelay(30 * time.Millisecond)
	waitEpochsMerged(t, cl, 1)
	sleeper.SetHang(true)
	cl.StartWorker() // spare

	res, err := cl.Wait(waitTimeout)
	if err != nil {
		t.Fatalf("run with hung worker failed: %v\nlogs:\n%s", err, cl.Logs())
	}
	if res.Digest != want.Digest {
		t.Fatalf("digest after hang %#x differs from clean digest %#x", res.Digest, want.Digest)
	}
	if got := cl.Metrics().WorkerFailures(); got < 1 {
		t.Fatalf("worker failures = %d, want >= 1 (did the hang land after the run?)", got)
	}
}

// TestSlowWorkerSameModel pins that a straggler changes only the wall
// clock: no failures, no reassignment, identical digest.
func TestSlowWorkerSameModel(t *testing.T) {
	opts := Options{Workers: 2, Epochs: 2, Staleness: 1}
	want := runClean(t, opts)

	cl := New(t, opts)
	cl.StartWorker()
	slow := cl.StartWorker()
	slow.SetReadDelay(20 * time.Millisecond)
	res, err := cl.Wait(waitTimeout)
	if err != nil {
		t.Fatalf("run with slow worker failed: %v", err)
	}
	if res.Digest != want.Digest {
		t.Fatalf("slow-worker digest %#x differs from clean digest %#x", res.Digest, want.Digest)
	}
	if got := cl.Metrics().WorkerFailures(); got != 0 {
		t.Fatalf("slow worker was treated as failed (%d failures); logs:\n%s", got, cl.Logs())
	}
}

// TestEpochTelemetry checks the observability satellite: one JSONL event
// per merged epoch with sane fields, and the srcldactl_* Prometheus
// surface rendering.
func TestEpochTelemetry(t *testing.T) {
	opts := Options{Workers: 2, Epochs: 3, Staleness: 2}
	cl := New(t, opts)
	cl.StartWorker()
	cl.StartWorker()
	if _, err := cl.Wait(waitTimeout); err != nil {
		t.Fatal(err)
	}
	events := cl.EpochEvents(t)
	if len(events) != opts.Epochs {
		t.Fatalf("got %d epoch events, want %d", len(events), opts.Epochs)
	}
	for i, ev := range events {
		if ev.Epoch != i+1 || ev.Epochs != opts.Epochs || ev.Workers != opts.Workers || ev.Staleness != opts.Staleness {
			t.Fatalf("event %d has wrong identity fields: %+v", i, ev)
		}
		if ev.MergeBytes <= 0 || ev.EpochSeconds < 0 {
			t.Fatalf("event %d has implausible measurements: %+v", i, ev)
		}
	}
	var prom strings.Builder
	cl.Metrics().WritePrometheus(&prom)
	for _, series := range []string{
		"srcldactl_epoch 3", "srcldactl_epochs_total 3", "srcldactl_workers 2",
		"srcldactl_staleness 2", "srcldactl_merge_bytes_total", "srcldactl_worker_lag_seconds",
		"srcldactl_frames_rejected_total 0", "srcldactl_worker_failures_total 0",
		"srcldactl_epoch_seconds_bucket",
	} {
		if !strings.Contains(prom.String(), series) {
			t.Fatalf("Prometheus output missing %q:\n%s", series, prom.String())
		}
	}
}
