// Package dtraintest stands up in-process distributed-training clusters —
// a real dtrain coordinator and real workers speaking the real CRC-framed
// protocol over net.Pipe — with injectable faults: abrupt worker kill,
// hang, slow frames, corrupted frames. Faults are the interesting part of a
// distributed trainer; this package makes each one a single method call in
// a test, mirroring gatewaytest for the serving side.
package dtraintest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/dtrain"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/obs"
	"sourcelda/internal/synth"
)

var (
	fixtureOnce sync.Once
	fixtureData *synth.MedlineData
	fixtureErr  error
)

// Fixture returns the shared synthetic training corpus and knowledge
// source — generated once per process, read-only thereafter.
func Fixture(tb testing.TB) (*corpus.Corpus, *knowledge.Source) {
	tb.Helper()
	fixtureOnce.Do(func() {
		fixtureData, fixtureErr = synth.MedlineLike(synth.MedlineOptions{
			NumTopics:  6,
			LiveTopics: 4,
			NumDocs:    18,
			AvgDocLen:  25,
			Alpha:      0.2,
			Mu:         0.7,
			Sigma:      0.3,
			Seed:       23,
		})
	})
	if fixtureErr != nil {
		tb.Fatal(fixtureErr)
	}
	return fixtureData.Corpus, fixtureData.Source
}

// DefaultSpec is the chain configuration the harness trains under unless a
// test overrides it.
func DefaultSpec(seed int64) dtrain.ChainSpec {
	return dtrain.ChainSpec{
		NumFreeTopics:    2,
		Alpha:            0.2,
		Beta:             0.01,
		LambdaMode:       "integrated",
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 5,
		UseSmoothing:     true,
		Seed:             seed,
	}
}

// Options configures a cluster.
type Options struct {
	// Workers is the shard count (default 2).
	Workers int
	// Epochs is the sync-boundary count (default 3).
	Epochs int
	// Staleness is local sweeps per epoch (default 2).
	Staleness int
	// Spec overrides the chain configuration (default DefaultSpec(41)).
	Spec *dtrain.ChainSpec
	// IOTimeout / EpochTimeout / JoinTimeout override the coordinator's
	// fault detectors (defaults 1s / 5s / 5s — short enough that hang
	// tests finish quickly, long enough for race-detector runs).
	IOTimeout    time.Duration
	EpochTimeout time.Duration
	JoinTimeout  time.Duration
}

// Cluster is one in-process coordinator plus the workers started against
// it. The coordinator runs from New; workers are started explicitly so
// tests control who joins when.
type Cluster struct {
	tb      testing.TB
	opts    Options
	ln      *dtrain.PipeListener
	metrics *dtrain.Metrics
	corpus  *corpus.Corpus
	source  *knowledge.Source
	root    string
	logBuf  *syncBuffer
	eventsW *syncBuffer
	cancel  context.CancelFunc
	result  chan coordOutcome

	mu      sync.Mutex
	workers []*Worker
	nextID  int
	closed  bool
}

type coordOutcome struct {
	res *dtrain.Result
	err error
}

// New boots a coordinator and returns the cluster. Close is registered as
// test cleanup; Wait collects the run's result.
func New(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 3
	}
	if opts.Staleness <= 0 {
		opts.Staleness = 2
	}
	if opts.Spec == nil {
		spec := DefaultSpec(41)
		opts.Spec = &spec
	}
	if opts.IOTimeout <= 0 {
		opts.IOTimeout = time.Second
	}
	if opts.EpochTimeout <= 0 {
		opts.EpochTimeout = 5 * time.Second
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 5 * time.Second
	}
	c, k := Fixture(tb)
	cl := &Cluster{
		tb:      tb,
		opts:    opts,
		ln:      dtrain.NewPipeListener(),
		corpus:  c,
		source:  k,
		root:    tb.TempDir(),
		logBuf:  &syncBuffer{},
		eventsW: &syncBuffer{},
		result:  make(chan coordOutcome, 1),
	}
	cl.metrics = dtrain.NewMetrics(cl.eventsW)
	logger, err := obs.NewLogger(cl.logBuf, "text", "debug")
	if err != nil {
		tb.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cl.cancel = cancel
	go func() {
		res, err := dtrain.RunCoordinator(ctx, cl.ln, dtrain.CoordinatorConfig{
			Corpus:       c,
			Source:       k,
			Spec:         *opts.Spec,
			Workers:      opts.Workers,
			Epochs:       opts.Epochs,
			Staleness:    opts.Staleness,
			Logger:       logger,
			Metrics:      cl.metrics,
			IOTimeout:    opts.IOTimeout,
			EpochTimeout: opts.EpochTimeout,
			JoinTimeout:  opts.JoinTimeout,
		})
		cl.result <- coordOutcome{res: res, err: err}
	}()
	tb.Cleanup(cl.Close)
	return cl
}

// Metrics exposes the coordinator's metrics for assertions.
func (cl *Cluster) Metrics() *dtrain.Metrics { return cl.metrics }

// Logs returns everything the coordinator and workers have logged so far.
func (cl *Cluster) Logs() string { return cl.logBuf.String() }

// EpochEvents parses the coordinator's telemetry JSONL into events.
func (cl *Cluster) EpochEvents(tb testing.TB) []dtrain.EpochEvent {
	tb.Helper()
	var events []dtrain.EpochEvent
	for _, line := range strings.Split(strings.TrimSpace(cl.eventsW.String()), "\n") {
		if line == "" {
			continue
		}
		var ev dtrain.EpochEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			tb.Fatalf("bad epoch event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// StartWorker launches one worker goroutine that dials the coordinator and
// speaks the protocol until done, killed, or failed. The returned handle
// owns the worker's fault switches.
func (cl *Cluster) StartWorker() *Worker {
	cl.mu.Lock()
	id := cl.nextID
	cl.nextID++
	w := &Worker{
		Name:  fmt.Sprintf("worker-%d", id),
		fault: newFaultConn(),
		done:  make(chan error, 1),
	}
	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	cl.workers = append(cl.workers, w)
	cl.mu.Unlock()

	logger, err := obs.NewLogger(cl.logBuf, "text", "debug")
	if err != nil {
		cl.tb.Fatal(err)
	}
	go func() {
		conn, err := cl.ln.Dial()
		if err != nil {
			w.done <- err
			return
		}
		if !w.fault.attach(conn) {
			conn.Close()
			w.done <- net.ErrClosed
			return
		}
		w.done <- dtrain.RunWorker(ctx, w.fault, dtrain.WorkerConfig{
			Corpus:         cl.corpus,
			Source:         cl.source,
			CheckpointRoot: cl.root,
			ID:             w.Name,
			Logger:         logger,
		})
	}()
	return w
}

// Wait blocks until the coordinator finishes (or timeout) and returns its
// result. It then releases every worker and waits for their goroutines to
// drain, so a passing test ends with no cluster goroutines alive.
func (cl *Cluster) Wait(timeout time.Duration) (*dtrain.Result, error) {
	cl.tb.Helper()
	var out coordOutcome
	select {
	case out = <-cl.result:
		cl.result <- out // keep available for Close / repeated Wait
	case <-time.After(timeout):
		cl.tb.Fatalf("coordinator did not finish within %s; logs:\n%s", timeout, cl.Logs())
	}
	cl.mu.Lock()
	workers := append([]*Worker(nil), cl.workers...)
	cl.mu.Unlock()
	for _, w := range workers {
		w.Kill()
		select {
		case err := <-w.done:
			w.done <- err
		case <-time.After(timeout):
			cl.tb.Fatalf("worker %s did not exit within %s", w.Name, timeout)
		}
	}
	return out.res, out.err
}

// Close tears the cluster down: coordinator canceled, listener closed,
// every worker killed. Idempotent; registered as test cleanup by New.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	workers := append([]*Worker(nil), cl.workers...)
	cl.mu.Unlock()
	cl.cancel()
	cl.ln.Close()
	for _, w := range workers {
		w.Kill()
	}
	// Drain the coordinator outcome so its goroutine exits.
	select {
	case <-cl.result:
	case <-time.After(10 * time.Second):
	}
}

// Worker is one in-process training worker plus its fault switches.
type Worker struct {
	Name   string
	fault  *faultConn
	cancel context.CancelFunc
	done   chan error
}

// Kill severs the worker abruptly: its connection dies mid-whatever and its
// goroutine unblocks. The dtrain contract is that a kill at ANY instant is
// recoverable.
func (w *Worker) Kill() {
	w.cancel()
	w.fault.Kill()
}

// Done reports the worker goroutine's exit error (nil after a clean
// coordinator "done" message).
func (w *Worker) Done() <-chan error { return w.done }

// SetHang makes every subsequent frame read and write block until the
// worker is killed — the stuck-but-connected worker.
func (w *Worker) SetHang(on bool) { w.fault.SetHang(on) }

// SetReadDelay delays every raw read by d — the slow worker. Slowness must
// never change the trained model, only the wall clock.
func (w *Worker) SetReadDelay(d time.Duration) { w.fault.SetReadDelay(d) }

// CorruptNextLargeWrite flips a byte in the worker's next outgoing frame
// larger than 1 KiB — its next count slab (base or delta), leaving the
// small control frames intact. The coordinator must reject the frame
// loudly and replace the worker.
func (w *Worker) CorruptNextLargeWrite() { w.fault.CorruptNextLargeWrite() }

// faultConn wraps the worker's net.Conn with the injection layer.
type faultConn struct {
	mu      sync.Mutex
	inner   net.Conn
	killed  bool
	hanging bool
	delay   time.Duration
	corrupt bool
	closed  chan struct{}
}

func newFaultConn() *faultConn {
	return &faultConn{closed: make(chan struct{})}
}

// attach installs the dialed connection; false if the worker was killed
// before the dial completed.
func (f *faultConn) attach(conn net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return false
	}
	f.inner = conn
	return true
}

func (f *faultConn) Kill() {
	f.mu.Lock()
	if f.killed {
		f.mu.Unlock()
		return
	}
	f.killed = true
	inner := f.inner
	close(f.closed)
	f.mu.Unlock()
	if inner != nil {
		inner.Close()
	}
}

func (f *faultConn) SetHang(on bool) {
	f.mu.Lock()
	f.hanging = on
	f.mu.Unlock()
}

func (f *faultConn) SetReadDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

func (f *faultConn) CorruptNextLargeWrite() {
	f.mu.Lock()
	f.corrupt = true
	f.mu.Unlock()
}

// gate applies the hang and kill faults; returns an error once the conn is
// unusable.
func (f *faultConn) gate() (net.Conn, time.Duration, error) {
	f.mu.Lock()
	inner, hanging, delay := f.inner, f.hanging, f.delay
	f.mu.Unlock()
	if inner == nil {
		return nil, 0, net.ErrClosed
	}
	if hanging {
		<-f.closed
		return nil, 0, net.ErrClosed
	}
	select {
	case <-f.closed:
		return nil, 0, net.ErrClosed
	default:
	}
	return inner, delay, nil
}

func (f *faultConn) Read(b []byte) (int, error) {
	inner, delay, err := f.gate()
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-f.closed:
			return 0, net.ErrClosed
		}
	}
	return inner.Read(b)
}

func (f *faultConn) Write(b []byte) (int, error) {
	inner, _, err := f.gate()
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	corrupt := f.corrupt && len(b) > 1<<10
	if corrupt {
		f.corrupt = false
	}
	f.mu.Unlock()
	if corrupt {
		mutated := append([]byte(nil), b...)
		mutated[len(mutated)-1] ^= 0xff // the frame's trailing CRC byte
		n, err := inner.Write(mutated)
		return n, err
	}
	return inner.Write(b)
}

func (f *faultConn) Close() error {
	f.mu.Lock()
	inner := f.inner
	f.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.Close()
}

func (f *faultConn) LocalAddr() net.Addr  { return addrOrPipe(f.inner, (net.Conn).LocalAddr) }
func (f *faultConn) RemoteAddr() net.Addr { return addrOrPipe(f.inner, (net.Conn).RemoteAddr) }

func addrOrPipe(c net.Conn, get func(net.Conn) net.Addr) net.Addr {
	if c == nil {
		return nil
	}
	return get(c)
}

func (f *faultConn) SetDeadline(t time.Time) error {
	if c, _, err := f.gate(); err == nil {
		return c.SetDeadline(t)
	}
	return nil
}

func (f *faultConn) SetReadDeadline(t time.Time) error {
	if c, _, err := f.gate(); err == nil {
		return c.SetReadDeadline(t)
	}
	return nil
}

func (f *faultConn) SetWriteDeadline(t time.Time) error {
	if c, _, err := f.gate(); err == nil {
		return c.SetWriteDeadline(t)
	}
	return nil
}

// syncBuffer is a goroutine-safe bytes.Buffer for shared log/telemetry
// sinks.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// CheckGoroutines fails the test if the goroutine count has not settled
// back to (roughly) base — the teardown leak gate. Teardown is
// asynchronous, so it polls briefly before judging.
func CheckGoroutines(tb testing.TB, base int) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	tb.Fatalf("goroutine leak: %d at start, %d after teardown\n%s", base, runtime.NumGoroutine(), buf)
}
