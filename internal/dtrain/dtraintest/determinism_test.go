package dtraintest

import (
	"fmt"
	"testing"

	"sourcelda/internal/core"
	"sourcelda/internal/dtrain"
)

// TestSingleWorkerMatchesSerialChain is the AD-LDA degeneracy contract:
// a 1-worker cluster (zero external overlay) must reproduce the serial
// in-process chain BIT-FOR-BIT, for every sweep mode × sampler kernel.
// The distributed machinery — wire codec, checkpointing, overlay install,
// final assembly — must be invisible to the math.
func TestSingleWorkerMatchesSerialChain(t *testing.T) {
	corp, src := Fixture(t)
	const epochs, staleness = 2, 2
	sweeps := epochs * staleness

	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"sequential", 0},
		{"sharded-docs", 3},
	} {
		for _, kernel := range []string{"serial", "simple-parallel", "prefix-sums", "sparse"} {
			t.Run(fmt.Sprintf("%s/%s", mode.name, kernel), func(t *testing.T) {
				spec := DefaultSpec(101)
				spec.Sampler = kernel
				spec.SweepMode = mode.name
				if mode.shards > 0 {
					spec.Shards = mode.shards
					spec.Threads = 2
				}

				cl := New(t, Options{Workers: 1, Epochs: epochs, Staleness: staleness, Spec: &spec})
				cl.StartWorker()
				res, err := cl.Wait(waitTimeout)
				if err != nil {
					t.Fatalf("1-worker cluster failed: %v\nlogs:\n%s", err, cl.Logs())
				}

				opts, err := spec.Options(spec.Seed)
				if err != nil {
					t.Fatal(err)
				}
				m, err := core.NewModel(corp, src, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer m.Close()
				m.Run(sweeps)
				serial := m.Checkpoint()

				if len(serial.Z) != len(res.Checkpoint.Z) {
					t.Fatalf("Z length mismatch: serial %d, cluster %d", len(serial.Z), len(res.Checkpoint.Z))
				}
				for i := range serial.Z {
					if serial.Z[i] != res.Checkpoint.Z[i] {
						t.Fatalf("Z diverges at token %d: serial %d, cluster %d", i, serial.Z[i], res.Checkpoint.Z[i])
					}
				}
				if want := dtrain.ModelDigest(serial); res.Digest != want {
					t.Fatalf("digest mismatch: serial %#x, cluster %#x (λ or disabled flags diverged)", want, res.Digest)
				}
			})
		}
	}
}

// TestMultiWorkerBitReproducible pins that an N-worker run is a pure
// function of (seed, partition, staleness): running the same cluster
// twice yields identical digests, for both the dense and sparse kernels.
func TestMultiWorkerBitReproducible(t *testing.T) {
	for _, kernel := range []string{"serial", "sparse"} {
		t.Run(kernel, func(t *testing.T) {
			spec := DefaultSpec(202)
			spec.Sampler = kernel
			opts := Options{Workers: 3, Epochs: 2, Staleness: 2, Spec: &spec}
			a := runClean(t, opts)
			b := runClean(t, opts)
			if a.Digest != b.Digest {
				t.Fatalf("same-config runs diverged: %#x vs %#x", a.Digest, b.Digest)
			}
		})
	}
}

// TestStalenessChangesTrajectory is a sanity check that the staleness knob
// is real: with multiple workers, syncing every sweep vs every other sweep
// must produce different chains (if it didn't, the overlay would not be
// wired into sampling at all).
func TestStalenessChangesTrajectory(t *testing.T) {
	spec := DefaultSpec(303)
	a := runClean(t, Options{Workers: 2, Epochs: 4, Staleness: 1, Spec: &spec})
	b := runClean(t, Options{Workers: 2, Epochs: 2, Staleness: 2, Spec: &spec})
	if a.Digest == b.Digest {
		t.Fatalf("staleness 1 and 2 produced identical digests %#x — overlay not affecting sampling", a.Digest)
	}
}
