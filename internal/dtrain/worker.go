package dtrain

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"path/filepath"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/obs"
	"sourcelda/internal/persist"
)

// WorkerConfig configures one training worker. The worker loads the FULL
// corpus and knowledge source locally (they are never shipped over the
// wire); the coordinator's assign message tells it which contiguous
// document range it owns.
type WorkerConfig struct {
	Corpus *corpus.Corpus
	Source *knowledge.Source
	// CheckpointRoot is the directory under which the worker keeps its
	// per-shard boundary checkpoints (shard-NNN subdirectories). A
	// replacement worker for a lost shard must see the same root — same
	// machine or shared storage — to resume from the lost worker's last
	// sync boundary.
	CheckpointRoot string
	// Retain bounds how many boundary checkpoints each shard keeps
	// (0 means persist.DefaultCheckpointRetain; negative keeps all).
	Retain int
	// ID names the worker in logs and the coordinator's runbook output.
	ID string
	// Logger receives worker lifecycle events; nil discards.
	Logger *slog.Logger
}

// RunWorker speaks the worker side of the dtrain protocol over conn until
// the coordinator says done, the connection fails, or ctx is canceled. It
// always closes conn before returning.
//
// The worker is deliberately stateless across connections: every piece of
// resumable state lives in the boundary checkpoints under CheckpointRoot,
// so killing a worker at ANY instant and starting a fresh one yields the
// same training trajectory.
func RunWorker(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	defer conn.Close()
	log := cfg.Logger
	if log == nil {
		log = obs.Discard()
	}
	if cfg.Corpus == nil || cfg.Corpus.NumDocs() == 0 {
		return fmt.Errorf("dtrain: worker corpus is empty")
	}
	if cfg.Source == nil {
		return fmt.Errorf("dtrain: worker knowledge source is nil")
	}
	if cfg.CheckpointRoot == "" {
		return fmt.Errorf("dtrain: worker checkpoint root must be non-empty")
	}

	// Unblock any in-flight frame read or write when ctx is canceled: a
	// deadline in the past fails the pending operation, and the deferred
	// Close handles the rest.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-watchdogDone:
		}
	}()

	if err := writeJSONMessage(conn, KindHello, 0, &helloBody{
		WorkerID:     cfg.ID,
		CorpusDigest: CorpusDigest(cfg.Corpus),
	}); err != nil {
		return err
	}
	msg, err := ReadMessage(conn)
	if err != nil {
		return err
	}
	var assign assignBody
	if err := decodeJSONBody(msg, KindAssign, &assign); err != nil {
		return err
	}
	m, ckw, err := openShardChain(cfg, &assign)
	if err != nil {
		return err
	}
	defer m.Close()
	staleness := max(1, assign.Staleness)
	log.Info("dtrain worker assigned",
		"worker", cfg.ID, "shard", assign.Shard, "docs_lo", assign.Lo, "docs_hi", assign.Hi,
		"start_epoch", assign.StartEpoch, "epochs", assign.Epochs, "staleness", staleness)

	if assign.SendBase {
		if err := WriteMessage(conn, &Message{Kind: KindBase, Shard: assign.Shard, Counts: m.OwnWordTopicCounts()}); err != nil {
			return err
		}
	}

	for {
		msg, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		switch msg.Kind {
		case KindCounts:
			start := time.Now()
			if err := m.SetGlobalCounts(msg.Counts); err != nil {
				return err
			}
			ownPrev := m.OwnWordTopicCounts()
			if err := m.RunWithHook(staleness, func(int, *core.Model) error { return ctx.Err() }); err != nil {
				return err
			}
			// Checkpoint the boundary BEFORE sending the delta: if this
			// worker dies anywhere past this point, its replacement can
			// replay from either the previous boundary (delta never merged)
			// or this one (delta merged) — both of which now exist on disk.
			if _, err := ckw.Write(m.Checkpoint()); err != nil {
				return err
			}
			delta := m.OwnWordTopicCounts()
			for i, p := range ownPrev {
				delta[i] -= p
			}
			epoch := msg.Epoch + 1
			if err := WriteMessage(conn, &Message{Kind: KindDelta, Shard: assign.Shard, Epoch: epoch, Counts: delta}); err != nil {
				return err
			}
			log.Debug("dtrain worker epoch complete",
				"worker", cfg.ID, "shard", assign.Shard, "epoch", epoch,
				"sweeps", m.Sweeps(), "seconds", time.Since(start).Seconds())
		case KindFinish:
			blob, err := persist.EncodeCheckpoint(m.Checkpoint())
			if err != nil {
				return err
			}
			if err := WriteMessage(conn, &Message{Kind: KindFinal, Shard: assign.Shard, Epoch: msg.Epoch, Blob: blob}); err != nil {
				return err
			}
		case KindDone:
			log.Info("dtrain worker done", "worker", cfg.ID, "shard", assign.Shard, "sweeps", m.Sweeps())
			return nil
		default:
			return fmt.Errorf("dtrain: worker received unexpected %s message", msg.Kind)
		}
	}
}

// openShardChain builds or resumes the worker's shard chain per the assign
// message: a fresh deterministic chain at epoch 0, or a restore of the
// exact boundary-StartEpoch checkpoint — never the newest file, which may
// belong to a boundary the coordinator hasn't merged.
func openShardChain(cfg WorkerConfig, assign *assignBody) (*core.Model, *persist.CheckpointWriter, error) {
	D := cfg.Corpus.NumDocs()
	if assign.Workers < 1 || assign.Shard < 0 || assign.Shard >= assign.Workers {
		return nil, nil, fmt.Errorf("dtrain: assigned shard %d of %d workers is out of range", assign.Shard, assign.Workers)
	}
	lo, hi := ShardRange(D, assign.Workers, assign.Shard)
	if lo != assign.Lo || hi != assign.Hi {
		return nil, nil, fmt.Errorf("dtrain: assigned document range [%d, %d) does not match the local partition [%d, %d) of %d docs — corpus mismatch",
			assign.Lo, assign.Hi, lo, hi, D)
	}
	if hi <= lo {
		return nil, nil, fmt.Errorf("dtrain: shard %d of %d workers over %d documents is empty", assign.Shard, assign.Workers, D)
	}
	opts, err := assign.Spec.Options(assign.Spec.Seed + int64(assign.Shard))
	if err != nil {
		return nil, nil, err
	}
	shardCorpus := corpus.NewWithVocab(cfg.Corpus.Vocab)
	shardCorpus.Docs = cfg.Corpus.Docs[lo:hi]

	dir := filepath.Join(cfg.CheckpointRoot, fmt.Sprintf("shard-%03d", assign.Shard))
	ckw, err := persist.NewCheckpointWriter(dir, cfg.Retain)
	if err != nil {
		return nil, nil, err
	}

	if assign.StartEpoch == 0 {
		// Fresh initialization is a pure function of the seed, so a
		// replacement worker at epoch 0 rebuilds rather than restores.
		m, err := core.NewModel(shardCorpus, cfg.Source, opts)
		if err != nil {
			return nil, nil, err
		}
		return m, ckw, nil
	}
	sweep := assign.StartEpoch * max(1, assign.Staleness)
	path, ok := persist.FindCheckpoint(dir, sweep)
	if !ok {
		return nil, nil, fmt.Errorf("dtrain: no boundary checkpoint for sync epoch %d (sweep %d) under %s — cannot resume shard %d",
			assign.StartEpoch, sweep, dir, assign.Shard)
	}
	ck, err := persist.LoadCheckpointFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.Restore(shardCorpus, cfg.Source, opts, ck)
	if err != nil {
		return nil, nil, err
	}
	return m, ckw, nil
}
