package dtrain

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"net"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/obs"
	"sourcelda/internal/persist"
)

// CoordinatorConfig configures a distributed training run.
type CoordinatorConfig struct {
	Corpus *corpus.Corpus
	Source *knowledge.Source
	// Spec is the chain configuration every worker trains under.
	Spec ChainSpec
	// Workers is N, the shard count. Every epoch waits for all N shards.
	Workers int
	// Epochs is the number of sync boundaries; total sweeps per worker is
	// Epochs × max(1, Staleness).
	Epochs int
	// Staleness is the local sweeps each worker runs between sync
	// boundaries (0 means 1: sync after every sweep).
	Staleness int
	// Logger receives coordinator lifecycle events; nil discards.
	Logger *slog.Logger
	// Metrics aggregates epoch telemetry; nil records nothing.
	Metrics *Metrics
	// IOTimeout bounds each control-frame read/write (handshakes, count
	// broadcasts). Default 30s.
	IOTimeout time.Duration
	// EpochTimeout bounds how long the coordinator waits for one shard's
	// delta — the straggler/hang detector. Default 5m.
	EpochTimeout time.Duration
	// JoinTimeout bounds how long the coordinator waits for a worker to
	// connect when a shard needs one. Default 5m.
	JoinTimeout time.Duration
}

// Result is a completed distributed run.
type Result struct {
	// Model is the assembled full-corpus chain, restored from Checkpoint
	// and ready for Freeze/export/perplexity.
	Model *core.Model
	// Checkpoint is the assembled full-corpus chain state: worker shard
	// assignments concatenated in document order, λ posterior weights
	// averaged across workers, disabled flags intersected.
	Checkpoint *core.Checkpoint
	// Digest fingerprints the trained state (ModelDigest of Checkpoint).
	Digest uint64
}

// RunCoordinator drives a distributed run over workers connecting through
// ln, which it owns and closes before returning. It blocks until the run
// completes, fails, or ctx is canceled.
//
// The protocol is barrier-synchronous: every epoch broadcasts the merged
// global counts to all N shards, waits for all N deltas, and only then
// merges (in shard order) — so the global count trajectory is a pure
// function of seed, partition and staleness. Workers that die, hang past
// EpochTimeout, or send corrupt frames are replaced: the shard is handed to
// the next connecting worker with the last MERGED epoch as its resume
// point, and the replacement's replayed delta is bit-identical to the one
// the lost worker would have sent, keeping the trajectory on course.
func RunCoordinator(ctx context.Context, ln net.Listener, cfg CoordinatorConfig) (*Result, error) {
	co, err := newCoordinator(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer co.shutdown()
	return co.run(ctx)
}

type coordinator struct {
	cfg     CoordinatorConfig
	log     *slog.Logger
	ln      net.Listener
	joined  chan net.Conn
	stopped chan struct{}

	slabLen     int // V×T
	totalTokens int
	digest      uint64 // corpus digest workers must match

	global     []int32 // merged global topic-word counts
	conns      []net.Conn
	baseMerged []bool
	reassigned int // reassignments in the current epoch
}

func newCoordinator(ln net.Listener, cfg CoordinatorConfig) (*coordinator, error) {
	if cfg.Corpus == nil || cfg.Corpus.NumDocs() == 0 {
		return nil, fmt.Errorf("dtrain: coordinator corpus is empty")
	}
	if cfg.Source == nil || cfg.Source.Len() == 0 {
		return nil, fmt.Errorf("dtrain: coordinator knowledge source is empty")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dtrain: worker count %d must be >= 1", cfg.Workers)
	}
	if cfg.Workers > cfg.Corpus.NumDocs() {
		return nil, fmt.Errorf("dtrain: %d workers over %d documents leaves empty shards", cfg.Workers, cfg.Corpus.NumDocs())
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("dtrain: epoch count %d must be >= 1", cfg.Epochs)
	}
	if _, err := cfg.Spec.Options(cfg.Spec.Seed); err != nil {
		return nil, err
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.EpochTimeout <= 0 {
		cfg.EpochTimeout = 5 * time.Minute
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 5 * time.Minute
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Discard()
	}
	T := cfg.Spec.NumFreeTopics + cfg.Source.Len()
	co := &coordinator{
		cfg:         cfg,
		log:         log,
		ln:          ln,
		joined:      make(chan net.Conn),
		stopped:     make(chan struct{}),
		slabLen:     cfg.Corpus.VocabSize() * T,
		totalTokens: cfg.Corpus.TotalTokens(),
		digest:      CorpusDigest(cfg.Corpus),
		global:      make([]int32, cfg.Corpus.VocabSize()*T),
		conns:       make([]net.Conn, cfg.Workers),
		baseMerged:  make([]bool, cfg.Workers),
	}
	go co.acceptLoop()
	return co, nil
}

// acceptLoop feeds incoming worker connections to the run loop. It exits
// when the listener closes (shutdown).
func (co *coordinator) acceptLoop() {
	for {
		conn, err := co.ln.Accept()
		if err != nil {
			return
		}
		select {
		case co.joined <- conn:
		case <-co.stopped:
			conn.Close()
			return
		}
	}
}

func (co *coordinator) shutdown() {
	close(co.stopped)
	co.ln.Close()
	for _, c := range co.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (co *coordinator) run(ctx context.Context) (*Result, error) {
	staleness := max(1, co.cfg.Staleness)
	N := co.cfg.Workers

	// Join round: every shard needs a worker and its epoch-0 base counts.
	for s := 0; s < N; s++ {
		if _, err := co.connFor(ctx, s, 0); err != nil {
			return nil, err
		}
	}
	co.log.Info("dtrain run starting", "workers", N, "epochs", co.cfg.Epochs,
		"staleness", staleness, "docs", co.cfg.Corpus.NumDocs(), "tokens", co.totalTokens)

	for e := 1; e <= co.cfg.Epochs; e++ {
		start := time.Now()
		co.reassigned = 0
		deltas := make([][]int32, N)
		var firstDelta, lastDelta time.Time

		// Broadcast the epoch-(e−1) global counts. Write deadlines matter:
		// over net.Pipe a hung worker blocks the write itself.
		for s := 0; s < N; s++ {
			if err := co.sendCounts(ctx, s, e-1); err != nil {
				return nil, err
			}
		}
		// Collect all N deltas before merging anything: a replacement
		// worker mid-epoch must see the unmodified epoch-(e−1) slab.
		for s := 0; s < N; s++ {
			d, err := co.collectDelta(ctx, s, e)
			if err != nil {
				return nil, err
			}
			deltas[s] = d
			now := time.Now()
			if firstDelta.IsZero() {
				firstDelta = now
			}
			lastDelta = now
		}
		for s := 0; s < N; s++ {
			for i, d := range deltas[s] {
				g := co.global[i] + d
				if g < 0 {
					return nil, fmt.Errorf("dtrain: merging shard %d's epoch-%d delta drives count %d negative (%d) — protocol violation", s, e, i, g)
				}
				co.global[i] = g
			}
		}

		elapsed := time.Since(start)
		ev := EpochEvent{
			Time:             time.Now().UTC(),
			Epoch:            e,
			Epochs:           co.cfg.Epochs,
			Workers:          N,
			Staleness:        staleness,
			EpochSeconds:     elapsed.Seconds(),
			MergeBytes:       int64(N) * int64(co.slabLen) * 4,
			WorkerLagSeconds: lastDelta.Sub(firstDelta).Seconds(),
			Reassigned:       co.reassigned,
		}
		if sec := elapsed.Seconds(); sec > 0 {
			ev.TokensPerSec = float64(co.totalTokens) * float64(staleness) / sec
		}
		co.cfg.Metrics.RecordEpoch(ev)
		co.log.Info("dtrain epoch merged", "epoch", e, "of", co.cfg.Epochs,
			"seconds", ev.EpochSeconds, "lag_seconds", ev.WorkerLagSeconds, "reassigned", co.reassigned)
	}

	cks, err := co.collectFinals(ctx)
	if err != nil {
		return nil, err
	}
	// Best-effort goodbye so workers exit cleanly instead of seeing a reset.
	for s, conn := range co.conns {
		if conn == nil {
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(co.cfg.IOTimeout))
		if err := WriteMessage(conn, &Message{Kind: KindDone, Shard: s}); err != nil {
			co.log.Warn("dtrain done message failed", "shard", s, "error", err)
		}
	}
	return co.assemble(cks)
}

// connFor returns shard s's live connection, running the join handshake
// (and base-count merge, first time) with replacement workers as needed.
// lastMerged is the newest sync epoch whose delta from this shard is folded
// into the global slab — the replacement's resume point.
func (co *coordinator) connFor(ctx context.Context, s, lastMerged int) (net.Conn, error) {
	for {
		if co.conns[s] != nil {
			return co.conns[s], nil
		}
		conn, err := co.nextConn(ctx)
		if err != nil {
			return nil, err
		}
		if err := co.handshake(conn, s, lastMerged); err != nil {
			co.log.Warn("dtrain worker handshake failed", "shard", s,
				"cause", classifyFailure(err), "error", err)
			co.noteFailure(err)
			conn.Close()
			continue
		}
		co.conns[s] = conn
		return conn, nil
	}
}

// nextConn waits for the next worker connection, bounded by JoinTimeout
// and ctx.
func (co *coordinator) nextConn(ctx context.Context) (net.Conn, error) {
	t := time.NewTimer(co.cfg.JoinTimeout)
	defer t.Stop()
	select {
	case conn := <-co.joined:
		return conn, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
		return nil, fmt.Errorf("dtrain: no worker joined within %s while shard needs one", co.cfg.JoinTimeout)
	}
}

// handshake runs hello/assign (and the base-count exchange for a shard
// whose initial counts are not yet in the global slab) on a fresh
// connection.
func (co *coordinator) handshake(conn net.Conn, s, lastMerged int) error {
	conn.SetDeadline(time.Now().Add(co.cfg.IOTimeout))
	defer conn.SetDeadline(time.Time{})
	msg, err := ReadMessage(conn)
	if err != nil {
		return err
	}
	var hello helloBody
	if err := decodeJSONBody(msg, KindHello, &hello); err != nil {
		return err
	}
	if hello.CorpusDigest != co.digest {
		return fmt.Errorf("dtrain: worker %q loaded a different corpus (digest %#x, coordinator has %#x)",
			hello.WorkerID, hello.CorpusDigest, co.digest)
	}
	lo, hi := ShardRange(co.cfg.Corpus.NumDocs(), co.cfg.Workers, s)
	sendBase := !co.baseMerged[s]
	if err := writeJSONMessage(conn, KindAssign, s, &assignBody{
		Shard:      s,
		Workers:    co.cfg.Workers,
		Lo:         lo,
		Hi:         hi,
		Epochs:     co.cfg.Epochs,
		Staleness:  co.cfg.Staleness,
		StartEpoch: lastMerged,
		SendBase:   sendBase,
		Spec:       co.cfg.Spec,
	}); err != nil {
		return err
	}
	co.log.Info("dtrain worker joined", "worker", hello.WorkerID, "shard", s,
		"start_epoch", lastMerged, "send_base", sendBase)
	if !sendBase {
		return nil
	}
	base, err := ReadMessage(conn)
	if err != nil {
		return err
	}
	if base.Kind != KindBase || base.Shard != s {
		return fmt.Errorf("dtrain: expected shard %d base counts, got %s for shard %d", s, base.Kind, base.Shard)
	}
	if len(base.Counts) != co.slabLen {
		return fmt.Errorf("dtrain: shard %d base slab has %d entries, want %d", s, len(base.Counts), co.slabLen)
	}
	for i, c := range base.Counts {
		if c < 0 {
			return fmt.Errorf("dtrain: shard %d base count %d is negative", s, i)
		}
		co.global[i] += c
	}
	co.baseMerged[s] = true
	return nil
}

// sendCounts broadcasts the current global slab (the state of sync epoch
// `epoch`) to shard s, replacing the worker on failure.
func (co *coordinator) sendCounts(ctx context.Context, s, epoch int) error {
	for {
		conn, err := co.connFor(ctx, s, epoch)
		if err != nil {
			return err
		}
		conn.SetWriteDeadline(time.Now().Add(co.cfg.IOTimeout))
		err = WriteMessage(conn, &Message{Kind: KindCounts, Shard: s, Epoch: epoch, Counts: co.global})
		conn.SetWriteDeadline(time.Time{})
		if err == nil {
			return nil
		}
		co.failShard(s, epoch, err)
	}
}

// collectDelta reads shard s's delta for sync epoch e, replacing the worker
// and replaying the epoch on any failure — disconnect, hang past
// EpochTimeout, or a corrupt frame.
func (co *coordinator) collectDelta(ctx context.Context, s, e int) ([]int32, error) {
	for {
		conn, err := co.connFor(ctx, s, e-1)
		if err != nil {
			return nil, err
		}
		conn.SetReadDeadline(time.Now().Add(co.cfg.EpochTimeout))
		msg, err := ReadMessage(conn)
		conn.SetReadDeadline(time.Time{})
		if err == nil {
			switch {
			case msg.Kind != KindDelta || msg.Shard != s || msg.Epoch != e:
				err = fmt.Errorf("dtrain: expected shard %d epoch %d delta, got %s shard %d epoch %d",
					s, e, msg.Kind, msg.Shard, msg.Epoch)
			case len(msg.Counts) != co.slabLen:
				err = fmt.Errorf("dtrain: shard %d delta slab has %d entries, want %d", s, len(msg.Counts), co.slabLen)
			default:
				return msg.Counts, nil
			}
		}
		co.failShard(s, e-1, err)
		// The replacement joins through connFor at the top of the loop and
		// needs this epoch's basis counts before it can replay.
		if err := co.resendCounts(ctx, s, e-1); err != nil {
			return nil, err
		}
	}
}

// resendCounts re-broadcasts the basis counts to a replacement worker for
// shard s (connFor re-runs the join if that write fails too).
func (co *coordinator) resendCounts(ctx context.Context, s, epoch int) error {
	return co.sendCounts(ctx, s, epoch)
}

// failShard drops shard s's connection after a failure and records it.
func (co *coordinator) failShard(s, lastMerged int, err error) {
	co.log.Warn("dtrain worker lost", "shard", s, "resume_epoch", lastMerged,
		"cause", classifyFailure(err), "error", err)
	co.noteFailure(err)
	if co.conns[s] != nil {
		co.conns[s].Close()
		co.conns[s] = nil
	}
	co.reassigned++
}

func (co *coordinator) noteFailure(err error) {
	co.cfg.Metrics.NoteWorkerFailure()
	if classifyFailure(err) == "corrupt-frame" {
		co.cfg.Metrics.NoteFrameRejected()
	}
}

// classifyFailure buckets a worker failure for logs and metrics: transport
// timeouts and disconnects are expected operational faults; anything else
// from the frame decoder means bytes arrived and failed validation —
// corruption, which is counted separately because it suggests a bad link
// or a bad worker rather than a dead one.
func classifyFailure(err error) string {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed):
		return "disconnect"
	default:
		return "corrupt-frame"
	}
}

// collectFinals gathers every shard's boundary-Epochs checkpoint.
func (co *coordinator) collectFinals(ctx context.Context) ([]*core.Checkpoint, error) {
	cks := make([]*core.Checkpoint, co.cfg.Workers)
	for s := 0; s < co.cfg.Workers; s++ {
		for {
			conn, err := co.connFor(ctx, s, co.cfg.Epochs)
			if err != nil {
				return nil, err
			}
			conn.SetWriteDeadline(time.Now().Add(co.cfg.IOTimeout))
			err = WriteMessage(conn, &Message{Kind: KindFinish, Shard: s, Epoch: co.cfg.Epochs})
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				conn.SetReadDeadline(time.Now().Add(co.cfg.EpochTimeout))
				var msg *Message
				msg, err = ReadMessage(conn)
				conn.SetReadDeadline(time.Time{})
				if err == nil {
					if msg.Kind != KindFinal || msg.Shard != s {
						err = fmt.Errorf("dtrain: expected shard %d final state, got %s for shard %d", s, msg.Kind, msg.Shard)
					} else {
						var ck *core.Checkpoint
						ck, err = persist.LoadCheckpoint(bytes.NewReader(msg.Blob))
						if err == nil {
							cks[s] = ck
							break
						}
					}
				}
			}
			co.failShard(s, co.cfg.Epochs, err)
		}
	}
	return cks, nil
}

// assemble stitches the worker shard states into one full-corpus chain:
// assignments concatenated in document order, λ posterior weights averaged
// across workers (each worker learned its own posterior from its shard
// against the shared global counts), disabled flags intersected, and the
// whole validated through core.Restore against the base-seed options.
func (co *coordinator) assemble(cks []*core.Checkpoint) (*Result, error) {
	spe := max(1, co.cfg.Staleness)
	fullOpts, err := co.cfg.Spec.Options(co.cfg.Spec.Seed)
	if err != nil {
		return nil, err
	}
	D := co.cfg.Corpus.NumDocs()
	ck := &core.Checkpoint{
		Sweep:         co.cfg.Epochs * spe,
		Seed:          co.cfg.Spec.Seed,
		OptionsDigest: fullOpts.ChainDigest(),
		VocabSize:     co.cfg.Corpus.VocabSize(),
		NumDocs:       D,
		StreamPos:     make([]uint64, fullOpts.NumStreams(D)),
	}
	for s, wck := range cks {
		if wck == nil {
			return nil, fmt.Errorf("dtrain: shard %d produced no final state", s)
		}
		if s == 0 {
			ck.NumFreeTopics = wck.NumFreeTopics
			ck.NumSourceTopics = wck.NumSourceTopics
			ck.LambdaWeights = make([]float64, len(wck.LambdaWeights))
			ck.Disabled = append([]bool(nil), wck.Disabled...)
		}
		if wck.NumFreeTopics != ck.NumFreeTopics || wck.NumSourceTopics != ck.NumSourceTopics ||
			wck.VocabSize != ck.VocabSize || len(wck.LambdaWeights) != len(ck.LambdaWeights) ||
			len(wck.Disabled) != len(ck.Disabled) {
			return nil, fmt.Errorf("dtrain: shard %d final state dimensions disagree with shard 0", s)
		}
		ck.DocLengths = append(ck.DocLengths, wck.DocLengths...)
		ck.Z = append(ck.Z, wck.Z...)
		for i, w := range wck.LambdaWeights {
			ck.LambdaWeights[i] += w
		}
		for i, d := range wck.Disabled {
			ck.Disabled[i] = ck.Disabled[i] && d
		}
	}
	for i := range ck.LambdaWeights {
		ck.LambdaWeights[i] /= float64(len(cks))
	}
	m, err := core.Restore(co.cfg.Corpus, co.cfg.Source, fullOpts, ck)
	if err != nil {
		return nil, fmt.Errorf("dtrain: assembled chain failed validation: %w", err)
	}
	res := &Result{Model: m, Checkpoint: ck, Digest: ModelDigest(ck)}
	co.log.Info("dtrain run complete", "sweeps", ck.Sweep, "digest", fmt.Sprintf("%#x", res.Digest))
	return res, nil
}

// ModelDigest fingerprints the trained state a distributed run is judged
// by — assignments, λ posterior weights, disabled flags — so two runs can
// be compared for bit-identity without comparing slabs.
func ModelDigest(ck *core.Checkpoint) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(ck.Sweep))
	writeU64(uint64(len(ck.Z)))
	for _, z := range ck.Z {
		writeU64(uint64(uint32(z)))
	}
	writeU64(uint64(len(ck.LambdaWeights)))
	for _, w := range ck.LambdaWeights {
		writeU64(math.Float64bits(w))
	}
	for _, d := range ck.Disabled {
		if d {
			writeU64(1)
		} else {
			writeU64(0)
		}
	}
	return h.Sum64()
}
