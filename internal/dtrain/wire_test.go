package dtrain

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleMessages() []*Message {
	return []*Message{
		{Kind: KindHello, Blob: []byte(`{"worker_id":"w0","corpus_digest":12}`)},
		{Kind: KindAssign, Shard: 2, Blob: []byte(`{"shard":2,"workers":4}`)},
		{Kind: KindBase, Shard: 1, Counts: []int32{0, 3, 0, 7, 1}},
		{Kind: KindCounts, Shard: 0, Epoch: 5, Counts: []int32{9, 8, 7}},
		{Kind: KindDelta, Shard: 3, Epoch: 6, Counts: []int32{-2, 2, 0, -1, 1}},
		{Kind: KindFinish, Shard: 0, Epoch: 10},
		{Kind: KindFinal, Shard: 0, Epoch: 10, Blob: bytes.Repeat([]byte{0xfe, 0x01}, 40)},
		{Kind: KindDone},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, want := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, want); err != nil {
			t.Fatalf("%s: WriteMessage: %v", want.Kind, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%s: ReadMessage: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round-trip mismatch:\n got %+v\nwant %+v", want.Kind, got, want)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: %d bytes left after one message", want.Kind, buf.Len())
		}
	}
}

func TestMessageStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

// TestMessageEveryFlipAndTruncationRejected is the satellite contract for
// the wire decoder: for a representative frame of every message kind, every
// single-byte flip outside the version field and every truncation must be
// rejected (and version flips must be refused by the version check when
// they change the version).
func TestMessageEveryFlipAndTruncationRejected(t *testing.T) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		for i := range frame {
			mutated := append([]byte(nil), frame...)
			mutated[i] ^= 0x04
			got, err := ReadMessage(bytes.NewReader(mutated))
			if err != nil {
				continue
			}
			// The CRC covers the payload, not the header, so a flip inside
			// the version field decodes at the frame layer — ReadMessage
			// must then refuse the changed version.
			t.Fatalf("%s: flip at byte %d accepted (decoded %s)", m.Kind, i, got.Kind)
		}
		for n := 0; n < len(frame); n++ {
			if _, err := ReadMessage(bytes.NewReader(frame[:n])); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes accepted", m.Kind, n, len(frame))
			}
		}
	}
}

func TestMessageUnknownKindRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: MsgKind(99)}); err == nil {
		t.Fatal("writing unknown kind did not fail")
	}
}

// FuzzReadMessage is the protocol-surface fuzz target, alongside persist's
// FuzzLoadCheckpoint: whatever bytes arrive, the decoder returns an error
// or a structurally valid message — it never panics and never over-reads.
func FuzzReadMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(wireMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Kind < KindHello || m.Kind > kindMax {
			t.Fatalf("decoder returned out-of-range kind %d", m.Kind)
		}
		if m.Shard < 0 || m.Epoch < 0 {
			t.Fatalf("decoder returned negative shard %d / epoch %d", m.Shard, m.Epoch)
		}
	})
}
