package dtrain

import (
	"fmt"
	"net"
	"sync"
)

// The transport seam is just net.Listener + net.Conn: srcldactl listens on
// TCP, the in-process harness (dtraintest) uses a PipeListener whose Dial
// hands back net.Pipe ends. Both support deadlines, which the coordinator
// leans on for every frame read AND write — net.Pipe is fully synchronous,
// so without write deadlines a hung worker would deadlock the coordinator's
// broadcast, not just its reads.

// PipeListener is an in-process net.Listener: Dial returns one end of a
// net.Pipe and Accept the other. It lets the full coordinator/worker
// protocol — frames, deadlines, failure paths — run without sockets.
type PipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

// NewPipeListener returns a listener ready to Accept.
func NewPipeListener() *PipeListener {
	return &PipeListener{
		conns: make(chan net.Conn),
		done:  make(chan struct{}),
	}
}

// Dial connects a new in-process client, blocking until the listener
// accepts or closes.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("dtrain: pipe listener is closed")
	}
}

// Accept implements net.Listener.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. Safe to call more than once.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
