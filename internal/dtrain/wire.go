package dtrain

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sourcelda/internal/persist"
)

// Wire protocol: every message is one persist CRC frame (magic "SLDADTRN",
// version WireVersion) whose payload is a fixed envelope —
//
//	u8  kind
//	i64 shard
//	i64 epoch
//	u64 count-slab length, then that many little-endian int32s
//	u64 blob length, then that many raw bytes
//
// — so a single decoder covers every message and a single fuzz target covers
// the whole protocol surface. The count slab carries topic-word counts or
// deltas (KindBase, KindCounts, KindDelta); the blob carries JSON control
// bodies (KindHello, KindAssign) or an embedded checkpoint frame
// (KindFinal). Unused sections are empty, never omitted.

const (
	wireMagic = "SLDADTRN"
	// WireVersion is the dtrain protocol format version.
	WireVersion = 1

	// maxWirePayload bounds the decoder's allocation against corrupt or
	// hostile length prefixes. Count slabs are V×T int32s; 4 GiB covers a
	// 10M-word vocabulary at 100 topics with room to spare.
	maxWirePayload = 4 << 30

	// msgOverhead is the envelope size around the variable sections.
	msgOverhead = 1 + 8 + 8 + 8 + 8
)

// MsgKind identifies a dtrain protocol message.
type MsgKind uint8

const (
	// KindHello is the worker's first message: a JSON hello body in Blob.
	KindHello MsgKind = iota + 1
	// KindAssign is the coordinator's reply: a JSON assign body in Blob.
	KindAssign
	// KindBase carries a freshly-initialized shard's own topic-word counts
	// (Counts), the worker's contribution to the epoch-0 global slab.
	KindBase
	// KindCounts broadcasts the merged global topic-word counts for the
	// epoch in Epoch; the receiving worker installs them and sweeps.
	KindCounts
	// KindDelta carries one worker's own-count delta for the epoch in Epoch.
	KindDelta
	// KindFinish asks a worker for its final chain state.
	KindFinish
	// KindFinal answers KindFinish: Blob holds the worker's boundary
	// checkpoint as a complete persist checkpoint frame.
	KindFinal
	// KindDone tells a worker the run is complete and it may exit.
	KindDone

	kindMax = KindDone
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindAssign:
		return "assign"
	case KindBase:
		return "base"
	case KindCounts:
		return "counts"
	case KindDelta:
		return "delta"
	case KindFinish:
		return "finish"
	case KindFinal:
		return "final"
	case KindDone:
		return "done"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is one decoded dtrain protocol datagram.
type Message struct {
	Kind   MsgKind
	Shard  int
	Epoch  int
	Counts []int32
	Blob   []byte
}

// helloBody is the JSON body of KindHello.
type helloBody struct {
	// WorkerID names the worker in logs and runbooks (host:pid, harness
	// worker name); it carries no protocol meaning.
	WorkerID string `json:"worker_id"`
	// CorpusDigest fingerprints the worker's locally-loaded corpus so a
	// worker pointed at the wrong data fails the handshake instead of
	// silently training a different model.
	CorpusDigest uint64 `json:"corpus_digest"`
}

// assignBody is the JSON body of KindAssign.
type assignBody struct {
	// Shard is the document shard this worker now owns.
	Shard int `json:"shard"`
	// Workers is the total shard count N.
	Workers int `json:"workers"`
	// Lo and Hi delimit the shard's document range [Lo, Hi) in the corpus.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Epochs and Staleness define the sweep schedule: Epochs sync
	// boundaries, Staleness local sweeps between consecutive boundaries.
	Epochs    int `json:"epochs"`
	Staleness int `json:"staleness"`
	// StartEpoch is the last sync boundary the coordinator has merged for
	// this shard. 0 with SendBase means a fresh chain; otherwise the worker
	// restores its boundary-StartEpoch checkpoint and replays from there.
	StartEpoch int `json:"start_epoch"`
	// SendBase asks the worker to report its initial own counts (the shard
	// has never contributed to the global slab).
	SendBase bool `json:"send_base"`
	// Spec is the chain configuration shared by every worker; the worker
	// derives its chain seed as Spec.Seed + Shard.
	Spec ChainSpec `json:"spec"`
}

// WriteMessage writes m to w as one CRC frame. The frame is assembled in
// memory and written with a single Write, so a frame is either fully on the
// wire or not at all from the writer's side.
func WriteMessage(w io.Writer, m *Message) error {
	if m.Kind < KindHello || m.Kind > kindMax {
		return fmt.Errorf("dtrain: cannot write message of unknown kind %d", m.Kind)
	}
	payload := make([]byte, 0, msgOverhead+4*len(m.Counts)+len(m.Blob))
	payload = append(payload, byte(m.Kind))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(m.Shard))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(m.Epoch))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(m.Counts)))
	for _, c := range m.Counts {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(c))
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(m.Blob)))
	payload = append(payload, m.Blob...)
	return persist.WriteFrame(w, wireMagic, WireVersion, payload)
}

// ReadMessage reads and validates one message frame from r. Any corruption —
// wrong magic, future version, truncation, length lies, checksum mismatch,
// unknown kind, negative shard/epoch — is an error; the decoder never
// panics on malformed input (fuzzed, FuzzReadMessage).
func ReadMessage(r io.Reader) (*Message, error) {
	version, payload, err := persist.ReadFrame(r, wireMagic, maxWirePayload, "dtrain message")
	if err != nil {
		return nil, err
	}
	if version != WireVersion {
		return nil, fmt.Errorf("dtrain: unsupported protocol version %d (this build speaks version %d)", version, WireVersion)
	}
	return decodeMessage(payload)
}

func decodeMessage(payload []byte) (*Message, error) {
	if len(payload) < msgOverhead {
		return nil, fmt.Errorf("dtrain: message payload of %d bytes is shorter than the %d-byte envelope", len(payload), msgOverhead)
	}
	m := &Message{Kind: MsgKind(payload[0])}
	if m.Kind < KindHello || m.Kind > kindMax {
		return nil, fmt.Errorf("dtrain: unknown message kind %d", payload[0])
	}
	off := 1
	shard := binary.LittleEndian.Uint64(payload[off:])
	epoch := binary.LittleEndian.Uint64(payload[off+8:])
	off += 16
	if shard > 1<<20 || epoch > 1<<40 {
		return nil, fmt.Errorf("dtrain: implausible shard %d / epoch %d in %s message", shard, epoch, m.Kind)
	}
	m.Shard, m.Epoch = int(shard), int(epoch)

	nCounts := binary.LittleEndian.Uint64(payload[off:])
	off += 8
	if remaining := uint64(len(payload) - off); nCounts > remaining/4 {
		return nil, fmt.Errorf("dtrain: %s message count-slab length %d exceeds remaining payload", m.Kind, nCounts)
	}
	if nCounts > 0 {
		m.Counts = make([]int32, nCounts)
		for i := range m.Counts {
			m.Counts[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
	}

	if len(payload)-off < 8 {
		return nil, fmt.Errorf("dtrain: %s message truncated before blob length", m.Kind)
	}
	nBlob := binary.LittleEndian.Uint64(payload[off:])
	off += 8
	if nBlob != uint64(len(payload)-off) {
		return nil, fmt.Errorf("dtrain: %s message blob length %d does not match the %d remaining bytes", m.Kind, nBlob, len(payload)-off)
	}
	if nBlob > 0 {
		m.Blob = payload[off:]
	}
	return m, nil
}

// writeJSONMessage marshals body into a Message blob and writes it.
func writeJSONMessage(w io.Writer, kind MsgKind, shard int, body any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dtrain: encode %s body: %w", kind, err)
	}
	return WriteMessage(w, &Message{Kind: kind, Shard: shard, Blob: blob})
}

// decodeJSONBody unmarshals a control message's blob into body, requiring
// the expected kind.
func decodeJSONBody(m *Message, kind MsgKind, body any) error {
	if m.Kind != kind {
		return fmt.Errorf("dtrain: expected %s message, got %s", kind, m.Kind)
	}
	if err := json.Unmarshal(m.Blob, body); err != nil {
		return fmt.Errorf("dtrain: decode %s body: %w", kind, err)
	}
	return nil
}
