// Package obs is the repository's shared observability layer: structured
// logging, request identity and span tracing, fixed-bucket Prometheus
// histograms, training telemetry, and runtime/pprof debug surfaces. It is
// dependency-free (standard library only) so every layer — the training
// CLI, the serving registry, the daemons — can use one vocabulary for
// events and metrics without pulling a metrics SDK into the module.
//
// The pieces:
//
//   - NewLogger builds a log/slog logger from the shared -log-format /
//     -log-level flag convention (text or JSON handler, leveled). Every
//     binary logs keyed events through it; there are no printf log lines
//     left in the serving path.
//   - NewRequestID / ValidRequestID and Trace implement request tracing:
//     an X-Request-Id is generated (or accepted from the client), carried
//     through the request lifecycle in the context, and accumulates
//     per-stage durations (queue wait → batch assembly → inference →
//     render) that the access log and the per-stage histograms report.
//   - Histogram is a lock-free fixed-bucket histogram rendered in the
//     Prometheus exposition format — the replacement for sampled quantile
//     windows, which silently degrade under sustained load.
//   - TrainingRecorder emits one structured JSONL event per Gibbs sweep
//     (log-likelihood, tokens/sec, sweep wall time, checkpoint latency)
//     and doubles as a live Prometheus endpoint for long training chains.
//   - NewDebugMux and WriteRuntimeMetrics expose net/http/pprof and
//     runtime gauges (goroutines, heap, mapped-bundle bytes) on an opt-in
//     debug listener.
package obs
