package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Stage names one segment of a request's lifecycle. The serving path records
// a duration per stage into the request's Trace and into per-model
// fixed-bucket histograms, so a slow request can be attributed to queueing,
// batching, sampling, or rendering rather than just "it was slow".
type Stage uint8

const (
	// StageQueueWait is the time a document spent in the model's pending
	// queue: from submission until the dispatcher dequeued it.
	StageQueueWait Stage = iota
	// StageBatchAssembly is the time from a document's dequeue until its
	// micro-batch was sealed and handed to the worker pool.
	StageBatchAssembly
	// StageInfer is the fold-in Gibbs sampling time of the document's batch.
	StageInfer
	// StageRender is the response serialization time (topic lookup + JSON
	// encoding), recorded once per request.
	StageRender
	// StageGateway is the time the serving gateway (srcldagw) spent on a
	// request outside the upstream replica call: routing, admission control,
	// retry/hedge bookkeeping and response copying. Recorded by the gateway
	// process only — replica-side recorders never observe it.
	StageGateway
	// NumStages is the number of traced stages; valid stages are < NumStages.
	NumStages
)

// String returns the stage's metric-label name.
func (s Stage) String() string {
	switch s {
	case StageQueueWait:
		return "queue_wait"
	case StageBatchAssembly:
		return "batch_assembly"
	case StageInfer:
		return "infer"
	case StageRender:
		return "render"
	case StageGateway:
		return "gateway"
	default:
		return fmt.Sprintf("stage-%d", uint8(s))
	}
}

// Stages lists every traced stage in lifecycle order — the iteration order
// for metric registration and rendering.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{StageQueueWait, StageBatchAssembly, StageInfer, StageRender, StageGateway}
}

// ServingStages lists the stages the replica-side serving path (srcldad)
// records — every stage except StageGateway, which only the gateway process
// observes. Replica metric rendering iterates this list so srcldad scrapes
// never carry a permanently empty gateway series.
func ServingStages() []Stage {
	return []Stage{StageQueueWait, StageBatchAssembly, StageInfer, StageRender}
}

// Trace is one request's span context: the request ID plus accumulated
// per-stage durations. A request fanning out into several documents (a
// batch infer) accumulates each document's stage times — the trace then
// reports the total time its documents spent per stage. All state is
// atomic (no locks) and every method is nil-safe, so recording sites never
// need a tracing-enabled check and cost nanoseconds on the hot path.
type Trace struct {
	// ID is the request's X-Request-Id.
	ID string

	model  atomic.Pointer[string]
	stages [NumStages]atomic.Int64
}

// NewTrace starts a trace for the given request ID.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// Add accumulates d into the stage. No-op on a nil trace or an out-of-range
// stage.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s >= NumStages {
		return
	}
	t.stages[s].Add(int64(d))
}

// Stage returns the accumulated duration of one stage (0 on a nil trace).
func (t *Trace) Stage(s Stage) time.Duration {
	if t == nil || s >= NumStages {
		return 0
	}
	return time.Duration(t.stages[s].Load())
}

// Durations returns all accumulated stage durations, indexed by Stage.
func (t *Trace) Durations() [NumStages]time.Duration {
	var out [NumStages]time.Duration
	if t == nil {
		return out
	}
	for i := range out {
		out[i] = time.Duration(t.stages[i].Load())
	}
	return out
}

// SetModel records which model served the request (for the access log;
// routing happens after the middleware starts the trace).
func (t *Trace) SetModel(name string) {
	if t == nil {
		return
	}
	t.model.Store(&name)
}

// Model returns the serving model recorded by SetModel ("" when the request
// never resolved to one).
func (t *Trace) Model() string {
	if t == nil {
		return ""
	}
	if p := t.model.Load(); p != nil {
		return *p
	}
	return ""
}

// ctxKey is the private context key type for traces.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is not
// traced (tracing disabled, or an internal caller). All Trace methods are
// nil-safe, so the result can be used unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Request IDs: 16 lowercase hex digits, unique within a process and
// unpredictable across processes. A cryptographically random base drawn at
// startup is combined with a per-request counter through an odd multiplier
// (a bijection over uint64), so IDs never repeat in-process and cost one
// atomic increment on the hot path instead of an entropy read per request.
var (
	reqSeq  atomic.Uint64
	reqBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy exhaustion is effectively impossible on supported
			// platforms; fall back to a fixed base (IDs stay unique, just
			// process-predictable).
			return 0x9d5c0fb3a1e64d27
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// NewRequestID returns a fresh 16-hex-digit request ID. Hand-rolled hex
// encoding: this runs once per request, and fmt.Sprintf costs ~20x as much.
func NewRequestID() string {
	const hex = "0123456789abcdef"
	n := reqSeq.Add(1)
	v := reqBase + n*0x9e3779b97f4a7c15
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ValidRequestID reports whether a client-supplied request ID is acceptable
// to propagate; anything else gets a freshly generated ID instead. IDs
// appear in logs and response headers, so the grammar is a conservative
// token alphabet and length — equivalent to ^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$
// but checked without the regexp engine (this too runs per request).
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}
