package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// DefaultLatencyBuckets are the fixed upper bounds (seconds) used for every
// request- and stage-latency histogram: sub-millisecond queueing detail
// through multi-second outliers, 14 buckets plus the implicit +Inf. Fixed
// buckets make scrapes O(buckets) forever and aggregate correctly across
// models and replicas — unlike a sampled quantile window, which degrades
// silently once traffic outruns the window.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe with no
// locks on the hot path: per-bucket atomic counters plus an atomic
// float64-bits sum. Rendering produces Prometheus histogram series
// (cumulative _bucket lines, _sum, _count).
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Nil or empty bounds take DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; bounds are few, this is ~4
	// compares.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: cumulative
// bucket counts aligned with Bounds (the +Inf bucket is Count itself).
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
}

// Snapshot copies the histogram's state. Buckets are read individually, so
// a snapshot taken during concurrent observes may be off by in-flight
// increments — never torn within one counter.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum + h.counts[len(h.bounds)].Load()
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// within the containing bucket — the same estimate PromQL's
// histogram_quantile computes. Returns 0 for an empty histogram; values in
// the +Inf bucket clamp to the highest finite bound.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var lo float64
	var prev uint64
	for i, bound := range s.Bounds {
		c := s.Cumulative[i]
		if float64(c) >= rank {
			inBucket := c - prev
			if inBucket == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-float64(prev))/float64(inBucket)
		}
		lo, prev = bound, c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WritePrometheus renders the snapshot as one Prometheus histogram series.
// labels is the rendered label set without braces (e.g. `model="news"`),
// "" for none; the le label is appended to it on _bucket lines.
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form, no exponent for the magnitudes bucket bounds use.
func formatBound(b float64) string {
	out := strconv.FormatFloat(b, 'f', -1, 64)
	// Guard against pathological custom bounds rendering very long; default
	// bounds are all short.
	if len(out) > 24 {
		out = strings.TrimRight(strconv.FormatFloat(b, 'f', 9, 64), "0")
	}
	return out
}
