package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// WriteRuntimeMetrics renders process runtime gauges in Prometheus
// exposition format under the given metric prefix: goroutine count, heap
// usage, GC cycles, and — when mappedBytes >= 0 — the bytes of model
// bundle data currently memory-mapped by the process (pass -1 when the
// process does not map bundles).
func WriteRuntimeMetrics(w io.Writer, prefix string, mappedBytes int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP %s_goroutines Current number of goroutines.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_goroutines gauge\n", prefix)
	fmt.Fprintf(w, "%s_goroutines %d\n", prefix, runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP %s_heap_alloc_bytes Bytes of allocated heap objects.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_heap_alloc_bytes gauge\n", prefix)
	fmt.Fprintf(w, "%s_heap_alloc_bytes %d\n", prefix, ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP %s_heap_sys_bytes Bytes of heap obtained from the OS.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_heap_sys_bytes gauge\n", prefix)
	fmt.Fprintf(w, "%s_heap_sys_bytes %d\n", prefix, ms.HeapSys)
	fmt.Fprintf(w, "# HELP %s_gc_cycles_total Completed GC cycles.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_gc_cycles_total counter\n", prefix)
	fmt.Fprintf(w, "%s_gc_cycles_total %d\n", prefix, ms.NumGC)
	if mappedBytes >= 0 {
		fmt.Fprintf(w, "# HELP %s_mapped_bundle_bytes Bytes of model bundles currently memory-mapped.\n", prefix)
		fmt.Fprintf(w, "# TYPE %s_mapped_bundle_bytes gauge\n", prefix)
		fmt.Fprintf(w, "%s_mapped_bundle_bytes %d\n", prefix, mappedBytes)
	}
}

// NewDebugMux builds the handler served on a -debug-addr listener:
// net/http/pprof under /debug/pprof/ plus a /debug/runtime endpoint
// rendered by the given function (typically a WriteRuntimeMetrics closure
// that knows the process's mapped-bundle bytes). The pprof handlers are
// registered explicitly rather than via the package's DefaultServeMux side
// effect, so importing obs never exposes profiling on a production
// listener by accident.
func NewDebugMux(runtimeMetrics func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if runtimeMetrics != nil {
			runtimeMetrics(w)
		}
	})
	return mux
}
