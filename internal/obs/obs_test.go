package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", "info")
	if err != nil {
		t.Fatalf("text logger: %v", err)
	}
	lg.Info("hello", "model", "news")
	if !strings.Contains(buf.String(), "model=news") {
		t.Fatalf("text output missing key: %q", buf.String())
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatalf("json logger: %v", err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "code", 503)
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("json output not a single JSON object (info not filtered?): %q", buf.String())
	}
	if ev["msg"] != "kept" || ev["code"] != float64(503) {
		t.Fatalf("unexpected event: %v", ev)
	}
}

func TestNewLoggerDefaultsAndErrors(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "", ""); err != nil {
		t.Fatalf("empty format/level should default: %v", err)
	}
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Fatal("unknown format should error")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "text", "loud"); err == nil {
		t.Fatal("unknown level should error")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex digits", id)
		}
		if !ValidRequestID(id) {
			t.Fatalf("generated id %q fails ValidRequestID", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"a", "req-1", "0123456789abcdef", "A.b_c-d", strings.Repeat("x", 128)} {
		if !ValidRequestID(ok) {
			t.Errorf("ValidRequestID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "-leading", ".dot", "has space", "semi;colon", strings.Repeat("x", 129), "newline\n"} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true, want false", bad)
		}
	}
}

func TestTraceAccumulatesAndNilSafe(t *testing.T) {
	tr := NewTrace("abc")
	tr.Add(StageQueueWait, 2*time.Millisecond)
	tr.Add(StageQueueWait, 3*time.Millisecond)
	tr.Add(StageInfer, 7*time.Millisecond)
	if got := tr.Stage(StageQueueWait); got != 5*time.Millisecond {
		t.Fatalf("queue_wait = %v, want 5ms", got)
	}
	d := tr.Durations()
	if d[StageInfer] != 7*time.Millisecond || d[StageRender] != 0 {
		t.Fatalf("durations = %v", d)
	}
	tr.SetModel("news")
	if tr.Model() != "news" {
		t.Fatalf("model = %q", tr.Model())
	}

	var nilTr *Trace
	nilTr.Add(StageInfer, time.Second) // must not panic
	nilTr.SetModel("x")
	if nilTr.Stage(StageInfer) != 0 || nilTr.Model() != "" {
		t.Fatal("nil trace should read as zero")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx-id")
	ctx := WithTrace(t.Context(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
	if TraceFrom(t.Context()) != nil {
		t.Fatal("TraceFrom on a bare context should be nil")
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"queue_wait", "batch_assembly", "infer", "render", "gateway"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.String(), want[i])
		}
	}
	wantServing := []string{"queue_wait", "batch_assembly", "infer", "render"}
	for i, s := range ServingStages() {
		if s.String() != wantServing[i] {
			t.Errorf("serving stage %d = %q, want %q", i, s.String(), wantServing[i])
		}
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	wantCum := []uint64{2, 3, 4}
	for i, c := range s.Cumulative {
		if c != wantCum[i] {
			t.Fatalf("cumulative = %v, want %v", s.Cumulative, wantCum)
		}
	}
	if math.Abs(s.Sum-5.56) > 1e-9 {
		t.Fatalf("sum = %g", s.Sum)
	}
	// Median rank 2.5 lands in the first bucket (cumulative 2 < 2.5 is
	// false at bucket 0? cumulative[0]=2 < 2.5, so bucket 1).
	q := s.Quantile(0.5)
	if q < 0.01 || q > 0.1 {
		t.Fatalf("p50 = %g, want within (0.01, 0.1]", q)
	}
	// +Inf observations clamp to the top finite bound.
	if q99 := s.Quantile(0.99); q99 != 1 {
		t.Fatalf("p99 = %g, want clamp to 1", q99)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	// Prometheus buckets are le (less-or-equal): an observation exactly on
	// a bound belongs to that bound's bucket.
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)
	s := h.Snapshot()
	if s.Cumulative[0] != 1 {
		t.Fatalf("observation on bound not in le bucket: %v", s.Cumulative)
	}
}

func TestHistogramPrometheusRendering(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	var buf bytes.Buffer
	h.Snapshot().WritePrometheus(&buf, "x_seconds", `model="m"`)
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{model="m",le="0.5"} 1`,
		`x_seconds_bucket{model="m",le="1"} 1`,
		`x_seconds_bucket{model="m",le="+Inf"} 2`,
		`x_seconds_sum{model="m"} 2.25`,
		`x_seconds_count{model="m"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	h.Snapshot().WritePrometheus(&buf, "y_seconds", "")
	if !strings.Contains(buf.String(), `y_seconds_bucket{le="0.5"} 1`) || !strings.Contains(buf.String(), "y_seconds_count 2") {
		t.Fatalf("unlabeled rendering wrong:\n%s", buf.String())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Cumulative[len(s.Cumulative)-1] != workers*per {
		t.Fatalf("top cumulative = %d, want %d", s.Cumulative[len(s.Cumulative)-1], workers*per)
	}
}

func TestTrainingRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewTrainingRecorder(&buf)
	ll := -1234.5
	ck := 0.012
	for i := 1; i <= 3; i++ {
		ev := SweepEvent{
			Time:         time.Date(2026, 8, 7, 0, 0, i, 0, time.UTC),
			Sweep:        i,
			TotalSweeps:  3,
			TokensPerSec: 1000,
			SweepSeconds: 0.5,
			Kernel:       "sparse",
		}
		if i == 2 {
			ev.LogLikelihood = &ll
			ev.CheckpointSeconds = &ck
			ev.CheckpointPath = "/tmp/ck"
		}
		r.Record(ev)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if lines == 1 {
			if _, present := ev["log_likelihood"]; present {
				t.Fatal("absent likelihood should be omitted, not zero")
			}
		}
		if lines == 2 && ev["log_likelihood"] != -1234.5 {
			t.Fatalf("line 2 likelihood = %v", ev["log_likelihood"])
		}
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}

	rr := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"srclda_sweep 3", "srclda_total_sweeps 3", "srclda_sweeps_total 3",
		"srclda_tokens_per_sec 1000", "srclda_checkpoints_total 1", "srclda_goroutines ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestTrainingRecorderWriteErrorDeferred(t *testing.T) {
	r := NewTrainingRecorder(failWriter{})
	r.Record(SweepEvent{Sweep: 1}) // must not panic or abort
	if r.Err() == nil {
		t.Fatal("write error should surface via Err")
	}
	var nilRec *TrainingRecorder
	nilRec.Record(SweepEvent{Sweep: 1})
	if nilRec.Err() != nil {
		t.Fatal("nil recorder should be inert")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	mux := NewDebugMux(func(w io.Writer) { WriteRuntimeMetrics(w, "test", 4096) })
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/runtime"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/runtime", nil))
	if !strings.Contains(rr.Body.String(), "test_mapped_bundle_bytes 4096") {
		t.Fatalf("runtime metrics missing mapped bytes:\n%s", rr.Body.String())
	}
}
