package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// SweepEvent is one line of the training telemetry log: everything known
// about a single Gibbs sweep at the moment it finished. Fields with no
// value for a given sweep are omitted from the JSON rather than emitted as
// zeros (a likelihood of 0 is a real — if implausible — likelihood).
type SweepEvent struct {
	// Time is when the sweep finished (RFC 3339, wall clock).
	Time time.Time `json:"time"`
	// Sweep is the 1-based sweep index within the chain.
	Sweep int `json:"sweep"`
	// TotalSweeps is the configured chain length.
	TotalSweeps int `json:"total_sweeps"`
	// LogLikelihood is the model log-likelihood after this sweep, when
	// likelihood tracing is enabled.
	LogLikelihood *float64 `json:"log_likelihood,omitempty"`
	// TokensPerSec is the sweep's sampling throughput.
	TokensPerSec float64 `json:"tokens_per_sec,omitempty"`
	// SweepSeconds is the sweep's wall time.
	SweepSeconds float64 `json:"sweep_seconds"`
	// CheckpointSeconds is the checkpoint write latency, when this sweep
	// wrote one.
	CheckpointSeconds *float64 `json:"checkpoint_seconds,omitempty"`
	// CheckpointPath is where that checkpoint landed.
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// Kernel is the sampler kernel name (e.g. "auto", "sparse", "dense").
	Kernel string `json:"kernel,omitempty"`
}

// TrainingRecorder turns per-sweep training progress into two surfaces: a
// JSONL event log (one SweepEvent per line) and a live Prometheus endpoint
// (MetricsHandler) exposing the latest sweep's gauges, so a multi-hour
// chain is monitorable in flight without parsing its log. A nil recorder
// is valid and records nothing.
type TrainingRecorder struct {
	mu     sync.Mutex
	out    io.Writer // JSONL sink; may be nil (metrics only)
	last   SweepEvent
	sweeps uint64
	ckpts  uint64
	err    error // first write error, reported once by Err
}

// NewTrainingRecorder builds a recorder writing JSONL events to out. out
// may be nil when only the Prometheus surface is wanted.
func NewTrainingRecorder(out io.Writer) *TrainingRecorder {
	return &TrainingRecorder{out: out}
}

// Record appends one sweep event to the JSONL log and updates the gauges
// served by MetricsHandler. Safe for concurrent use; nil-safe.
func (r *TrainingRecorder) Record(ev SweepEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.last = ev
	r.sweeps++
	if ev.CheckpointSeconds != nil {
		r.ckpts++
	}
	if r.out == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err == nil {
		b = append(b, '\n')
		_, err = r.out.Write(b)
	}
	if err != nil && r.err == nil {
		r.err = err
	}
}

// Err returns the first JSONL write error, if any — telemetry must never
// abort training, so failures are deferred here for the caller to report
// at exit.
func (r *TrainingRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// WritePrometheus renders the latest sweep's state as srclda_* gauges plus
// process runtime gauges.
func (r *TrainingRecorder) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	last, sweeps, ckpts := r.last, r.sweeps, r.ckpts
	r.mu.Unlock()

	fmt.Fprintf(w, "# HELP srclda_sweep Last completed sweep index (1-based).\n")
	fmt.Fprintf(w, "# TYPE srclda_sweep gauge\n")
	fmt.Fprintf(w, "srclda_sweep %d\n", last.Sweep)
	fmt.Fprintf(w, "# HELP srclda_total_sweeps Configured chain length.\n")
	fmt.Fprintf(w, "# TYPE srclda_total_sweeps gauge\n")
	fmt.Fprintf(w, "srclda_total_sweeps %d\n", last.TotalSweeps)
	fmt.Fprintf(w, "# HELP srclda_sweeps_total Sweeps completed by this process.\n")
	fmt.Fprintf(w, "# TYPE srclda_sweeps_total counter\n")
	fmt.Fprintf(w, "srclda_sweeps_total %d\n", sweeps)
	if last.LogLikelihood != nil {
		fmt.Fprintf(w, "# HELP srclda_log_likelihood Model log-likelihood after the last sweep.\n")
		fmt.Fprintf(w, "# TYPE srclda_log_likelihood gauge\n")
		fmt.Fprintf(w, "srclda_log_likelihood %g\n", *last.LogLikelihood)
	}
	fmt.Fprintf(w, "# HELP srclda_tokens_per_sec Sampling throughput of the last sweep.\n")
	fmt.Fprintf(w, "# TYPE srclda_tokens_per_sec gauge\n")
	fmt.Fprintf(w, "srclda_tokens_per_sec %g\n", last.TokensPerSec)
	fmt.Fprintf(w, "# HELP srclda_sweep_seconds Wall time of the last sweep.\n")
	fmt.Fprintf(w, "# TYPE srclda_sweep_seconds gauge\n")
	fmt.Fprintf(w, "srclda_sweep_seconds %g\n", last.SweepSeconds)
	fmt.Fprintf(w, "# HELP srclda_checkpoints_total Checkpoints written by this process.\n")
	fmt.Fprintf(w, "# TYPE srclda_checkpoints_total counter\n")
	fmt.Fprintf(w, "srclda_checkpoints_total %d\n", ckpts)
	if last.CheckpointSeconds != nil {
		fmt.Fprintf(w, "# HELP srclda_checkpoint_seconds Write latency of the last checkpoint.\n")
		fmt.Fprintf(w, "# TYPE srclda_checkpoint_seconds gauge\n")
		fmt.Fprintf(w, "srclda_checkpoint_seconds %g\n", *last.CheckpointSeconds)
	}
	WriteRuntimeMetrics(w, "srclda", -1)
}

// MetricsHandler serves WritePrometheus over HTTP — the body behind the
// trainer's -metrics-addr listener.
func (r *TrainingRecorder) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
