package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log format names accepted by NewLogger — the shared -log-format flag
// vocabulary of every binary in this module.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a leveled slog logger writing to w, following the shared
// CLI convention: format is "text" (human-readable key=value lines) or
// "json" (one JSON object per line, for log shippers), level is one of
// "debug", "info", "warn", "error". Unknown values are an error, not a
// silent default — a typo'd ops flag must fail the process at startup, not
// quietly change verbosity.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}

// Discard returns a logger that drops everything — the default for
// libraries whose caller did not configure logging, so "no logger" never
// means "nil pointer" at a call site.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
