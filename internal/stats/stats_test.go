package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sourcelda/internal/rng"
)

func TestKLDivergenceIdentical(t *testing.T) {
	p := []float64{0.25, 0.25, 0.5}
	if got := KLDivergence(p, p); got != 0 {
		t.Fatalf("KL(p||p) = %v, want 0", got)
	}
}

func TestKLDivergenceKnown(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	if got := KLDivergence(p, q); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("got %v, want ln2", got)
	}
}

func TestKLDivergenceInfiniteWhenUnsupported(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if got := KLDivergence(p, q); !math.IsInf(got, 1) {
		t.Fatalf("got %v, want +Inf", got)
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	r := rng.New(5)
	buf1 := make([]float64, 8)
	buf2 := make([]float64, 8)
	for i := 0; i < 200; i++ {
		r.DirichletSymmetric(0.5, buf1)
		r.DirichletSymmetric(0.5, buf2)
		js := JSDivergence(buf1, buf2)
		if js < 0 || js > math.Log(2)+1e-12 {
			t.Fatalf("JS %v outside [0, ln2]", js)
		}
		if sym := JSDivergence(buf2, buf1); math.Abs(js-sym) > 1e-12 {
			t.Fatalf("asymmetric: %v vs %v", js, sym)
		}
	}
}

func TestJSDivergenceIdentityAndMax(t *testing.T) {
	p := []float64{0.3, 0.7}
	if got := JSDivergence(p, p); got != 0 {
		t.Fatalf("JS(p,p) = %v, want 0", got)
	}
	// Disjoint supports achieve the maximum ln 2.
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := JSDivergence(a, b); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("JS(disjoint) = %v, want ln2", got)
	}
}

func TestJSDistanceTriangleInequality(t *testing.T) {
	// sqrt(JS) is a metric; spot-check the triangle inequality on random
	// distributions.
	r := rng.New(7)
	p := make([]float64, 5)
	q := make([]float64, 5)
	m := make([]float64, 5)
	for i := 0; i < 100; i++ {
		r.DirichletSymmetric(1, p)
		r.DirichletSymmetric(1, q)
		r.DirichletSymmetric(1, m)
		if JSDistance(p, q) > JSDistance(p, m)+JSDistance(m, q)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Fatalf("orthogonal cos = %v", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cos = %v", got)
	}
	if got := CosineSimilarity(a, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-vector cos = %v, want 0", got)
	}
}

func TestHellingerBounds(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := Hellinger(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("disjoint Hellinger = %v, want 1", got)
	}
	if got := Hellinger(a, a); got != 0 {
		t.Fatalf("self Hellinger = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestBoxPlotSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100} // 100 is an outlier
	bp := NewBoxPlot(xs)
	if bp.N != 6 {
		t.Fatalf("N = %d", bp.N)
	}
	if bp.Min != 1 || bp.Max != 100 {
		t.Fatalf("min/max = %v/%v", bp.Min, bp.Max)
	}
	if bp.Median != 3.5 {
		t.Fatalf("median = %v, want 3.5", bp.Median)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", bp.Outliers)
	}
	if bp.HighWhisker == 100 {
		t.Fatal("high whisker must exclude the outlier")
	}
	if bp.Q1 > bp.Median || bp.Median > bp.Q3 {
		t.Fatal("quartiles out of order")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	bp := NewBoxPlot(nil)
	if bp.N != 0 {
		t.Fatal("empty box plot should have N=0")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatal("min/max/sum wrong")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := PearsonCorrelation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := PearsonCorrelation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := PearsonCorrelation(xs, []float64{1, 1, 1, 1}); got != 0 {
		t.Fatalf("constant series correlation = %v, want 0", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("H(fair coin) = %v", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("H(deterministic) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if len(counts) != 2 || len(edges) != 2 {
		t.Fatal("wrong shapes")
	}
	if counts[0]+counts[1] != 5 {
		t.Fatalf("total %d, want 5", counts[0]+counts[1])
	}
	// 0 and 0.1 land in bin 0; 0.5 sits exactly on the split and belongs to
	// bin 1; 0.9 and 1.0 land in bin 1.
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [2 3]", counts)
	}
}

func TestJSDivergencePropertyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		p := make([]float64, 6)
		q := make([]float64, 6)
		r.DirichletSymmetric(0.3, p)
		r.DirichletSymmetric(0.3, q)
		js := JSDivergence(p, q)
		return js >= 0 && js <= math.Log(2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivergenceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"KL":        func() { KLDivergence([]float64{1}, []float64{0.5, 0.5}) },
		"JS":        func() { JSDivergence([]float64{1}, []float64{0.5, 0.5}) },
		"cosine":    func() { CosineSimilarity([]float64{1}, []float64{0.5, 0.5}) },
		"hellinger": func() { Hellinger([]float64{1}, []float64{0.5, 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
