// Package stats provides the statistical primitives the evaluation section
// of the paper relies on: Jensen–Shannon and Kullback–Leibler divergences
// between discrete distributions, cosine similarity, descriptive statistics,
// and the five-number summaries that back the paper's box-plot figures
// (Figs. 2, 3 and 4).
package stats

import (
	"math"
	"sort"
)

// KLDivergence returns the Kullback–Leibler divergence KL(p || q) in nats for
// discrete distributions p and q of equal length. Terms with p_i == 0
// contribute zero; terms with p_i > 0 and q_i == 0 contribute +Inf, matching
// the mathematical definition.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	var sum float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		sum += p[i] * math.Log(p[i]/q[i])
	}
	return sum
}

// JSDivergence returns the Jensen–Shannon divergence between discrete
// distributions p and q in nats. It is symmetric, finite, and bounded by
// ln 2. The paper uses it to compare topic-word distributions with source
// distributions and to map unlabeled topics to knowledge-source topics.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JSDivergence length mismatch")
	}
	var sum float64
	for i := range p {
		pi, qi := p[i], q[i]
		mi := 0.5 * (pi + qi)
		if pi > 0 {
			sum += 0.5 * pi * math.Log(pi/mi)
		}
		if qi > 0 {
			sum += 0.5 * qi * math.Log(qi/mi)
		}
	}
	if sum < 0 { // guard against tiny negative round-off
		return 0
	}
	return sum
}

// JSDistance returns the square root of the Jensen–Shannon divergence, which
// is a true metric.
func JSDistance(p, q []float64) float64 { return math.Sqrt(JSDivergence(p, q)) }

// CosineSimilarity returns the cosine of the angle between vectors a and b,
// or 0 when either vector is all-zero.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: CosineSimilarity length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Hellinger returns the Hellinger distance between two discrete
// distributions, in [0, 1].
func Hellinger(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: Hellinger length mismatch")
	}
	var sum float64
	for i := range p {
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		sum += d * d
	}
	return math.Sqrt(sum) / math.Sqrt2
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R and NumPy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// BoxPlot is the five-number summary (plus mean and outlier fences) used to
// report the distributional figures. Whiskers follow the Tukey convention:
// the most extreme data points within 1.5 IQR of the quartiles.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	LowWhisker, HighWhisker  float64
	Mean                     float64
	N                        int
	Outliers                 []float64
}

// NewBoxPlot computes the summary of xs. It returns a zero-value summary for
// empty input.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	bp := BoxPlot{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	bp.Mean = sum / float64(len(sorted))
	iqr := bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*iqr
	hiFence := bp.Q3 + 1.5*iqr
	bp.LowWhisker, bp.HighWhisker = bp.Min, bp.Max
	for _, x := range sorted {
		if x >= loFence {
			bp.LowWhisker = x
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			bp.HighWhisker = sorted[i]
			break
		}
	}
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
		}
	}
	return bp
}

// Summary holds simple descriptive statistics.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	Sum            float64
	Q1, Q3         float64
	StandardError  float64
	CoefficientVar float64
}

// Describe computes a Summary of xs. Std is the sample standard deviation
// (n-1 denominator) when n > 1.
func Describe(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = quantileSorted(sorted, 0.5)
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Q3 = quantileSorted(sorted, 0.75)
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		s.StandardError = s.Std / math.Sqrt(float64(len(xs)))
		if s.Mean != 0 {
			s.CoefficientVar = s.Std / math.Abs(s.Mean)
		}
	}
	return s
}

// PearsonCorrelation returns the sample Pearson correlation coefficient of
// the paired samples xs and ys, or 0 if either sample is constant.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: PearsonCorrelation length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Entropy returns the Shannon entropy of a discrete distribution in nats.
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}

// Histogram bins xs into nbins equal-width buckets over [min, max] and
// returns bucket counts together with the left edges. Degenerate ranges
// place everything in the first bucket.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	counts = make([]int, nbins)
	edges = make([]float64, nbins)
	if len(xs) == 0 || nbins == 0 {
		return counts, edges
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	if width == 0 {
		counts[0] = len(xs)
		return counts, edges
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}
