package gateway

import (
	"math"
	"sync"
	"time"
)

// retryBudget caps extra upstream tries (retries and hedges) to a fraction
// of request traffic, the classic retry-budget defense against retry storms:
// when every backend is failing, naive per-request retry policies multiply
// offered load exactly when capacity is scarcest. Each client request earns
// ratio tokens (capped at burst); every retry or hedge spends one. The
// bucket starts full so a cold gateway can still cover a replica loss.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	return &retryBudget{tokens: burst, burst: burst, ratio: ratio}
}

// earn credits one client request's worth of retry allowance.
func (rb *retryBudget) earn() {
	rb.mu.Lock()
	rb.tokens = math.Min(rb.burst, rb.tokens+rb.ratio)
	rb.mu.Unlock()
}

// spend takes one token; false means the budget is exhausted and the caller
// must not launch another try.
func (rb *retryBudget) spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// maxTenants bounds the lazily-grown tenant map. At the cap, stale buckets
// (idle long enough to have refilled completely) are evicted; if every
// bucket is active the map stops growing and unknown tenants share the
// overflow bucket under the empty key — bounded memory beats precise
// per-tenant fairness under a tenant-cardinality attack.
const maxTenants = 8192

// tenantLimiter is per-tenant token-bucket admission control in front of
// the replicas' bounded queues: each tenant sustains rate requests/second
// with bursts up to burst. A zero rate disables admission control.
type tenantLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tenantBucket
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate, burst float64) *tenantLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &tenantLimiter{rate: rate, burst: burst, buckets: make(map[string]*tenantBucket)}
}

// admit decides one request: ok, or the duration after which the tenant's
// next token arrives (the 429 Retry-After). Nil limiter admits everything.
func (l *tenantLimiter) admit(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenants {
			l.evictStale(now)
		}
		if len(l.buckets) >= maxTenants {
			tenant = ""
			if b = l.buckets[tenant]; b == nil {
				b = &tenantBucket{tokens: l.burst, last: now}
				l.buckets[tenant] = b
			}
		} else {
			b = &tenantBucket{tokens: l.burst, last: now}
			l.buckets[tenant] = b
		}
	}
	b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictStale drops buckets idle long enough to have refilled to burst —
// readmitting them later is indistinguishable from having kept them.
// Caller holds l.mu.
func (l *tenantLimiter) evictStale(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for t, b := range l.buckets {
		if now.Sub(b.last) >= full {
			delete(l.buckets, t)
		}
	}
}

// RetryAfterSeconds renders a Retry-After duration as the header's
// whole-second value, at least 1 (a zero Retry-After invites an immediate
// retry, defeating the point of shedding).
func RetryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
