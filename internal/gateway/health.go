package gateway

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// healthLoop runs the active checker: one concurrent /readyz probe round per
// HealthInterval. Active probing is what catches failure modes passive
// ejection cannot — a hung replica accepts connections and never answers, so
// its tries die as hedge-canceled losers (neutral by design); the probe's
// own deadline converts that silence into an unhealthy verdict.
func (g *Gateway) healthLoop(ctx context.Context) {
	defer close(g.healthDone)
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probeAll(ctx)
		}
	}
}

// probeAll probes every backend concurrently and waits for the round to
// finish, so one hung backend delays its own verdict by ProbeTimeout without
// starving the others' probes.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (g *Gateway) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url.String()+"/readyz", nil)
	if err == nil {
		resp, derr := g.client.Do(req)
		if derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ctx.Err() != nil {
		// Shutdown canceled the probe; a flap to unhealthy here would be an
		// artifact of closing, not a verdict about the backend.
		return
	}
	if !ok {
		b.recordProbeFailure()
	}
	if was := b.healthy.Swap(ok); was != ok {
		if ok {
			g.cfg.Logger.Info("backend healthy", "backend", b.id, "url", b.url.String())
		} else {
			g.cfg.Logger.Warn("backend unhealthy", "backend", b.id, "url", b.url.String())
		}
	}
}
