// End-to-end fault-injection tests: a real gateway in front of real
// in-process replica clusters (package gatewaytest), exercising the
// failure modes the gateway exists for — replica death under load, hangs,
// 503 storms, slow starts and overload. External test package because the
// harness imports the gateway.
package gateway_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sourcelda/internal/gateway"
	"sourcelda/internal/gateway/gatewaytest"
)

// newGateway builds a gateway over the cluster and serves it; mutate tweaks
// the config before New.
func newGateway(t testing.TB, c *gatewaytest.Cluster, mutate func(*gateway.Config)) (*gateway.Gateway, *httptest.Server) {
	t.Helper()
	cfg := gateway.Config{
		Backends:       c.Specs(),
		HealthInterval: 50 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		TryTimeout:     5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return g, ts
}

// do issues one request and returns status, headers and the full body.
func do(t testing.TB, client *http.Client, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// inferBodies are the distinct request payloads the load generators cycle
// through; every one mixes both topics so responses are non-trivial.
var inferBodies = []string{
	`{"documents":["pencil ruler eraser notebook"]}`,
	`{"documents":["baseball umpire pitcher glove"]}`,
	`{"documents":["pencil baseball ruler inning"]}`,
	`{"documents":["notebook paper glove umpire"]}`,
	`{"documents":["eraser inning pencil pitcher"]}`,
	`{"documents":["paper paper baseball baseball"]}`,
	`{"documents":["ruler glove notebook inning"]}`,
	`{"documents":["pitcher eraser umpire paper"]}`,
}

// TestGatewayKillReplicaUnderLoad is the acceptance test: concurrent load
// through a 3-replica gateway while the primary replica for the routed
// model dies abruptly mid-load. Every request must succeed, every response
// must be byte-identical to a direct single-replica run, and the gateway's
// metrics must reconcile exactly with the load generator's counts.
func TestGatewayKillReplicaUnderLoad(t *testing.T) {
	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 3})
	g, ts := newGateway(t, c, func(cfg *gateway.Config) {
		cfg.HealthInterval = 100 * time.Millisecond
		cfg.EjectThreshold = 3
		cfg.EjectBackoff = 100 * time.Millisecond
		// A replica kill fails many concurrent requests at once; the test is
		// about failover, not budget tuning, so make the budget a non-issue.
		cfg.RetryBudgetRatio = 1
		cfg.RetryBudgetBurst = 500
	})
	client := &http.Client{}

	// Oracle: the same bodies served directly by two different replicas must
	// already agree byte-for-byte (inference is deterministic in model, seed
	// and text) — then the gateway is held to the same bytes.
	oracle := make(map[string][]byte, len(inferBodies))
	for _, body := range inferBodies {
		s0, _, b0 := do(t, client, http.MethodPost, c.Replicas[0].URL()+"/v1/infer", body)
		s1, _, b1 := do(t, client, http.MethodPost, c.Replicas[1].URL()+"/v1/infer", body)
		if s0 != http.StatusOK || s1 != http.StatusOK {
			t.Fatalf("direct replica infer: status %d / %d", s0, s1)
		}
		if string(b0) != string(b1) {
			t.Fatalf("replicas disagree on %s:\n%s\nvs\n%s", body, b0, b1)
		}
		oracle[body] = b0
	}

	// One probe request through the gateway identifies the primary replica
	// for the default model — the kill must hit the replica actually taking
	// the traffic, or the test exercises nothing.
	status, hdr, body := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
	if status != http.StatusOK {
		t.Fatalf("probe request: status %d: %s", status, body)
	}
	primary := hdr.Get("X-Backend")
	if c.ByID(primary) == nil {
		t.Fatalf("probe request returned unknown X-Backend %q", primary)
	}

	const workers, perWorker = 8, 30
	total := workers * perWorker
	var completed atomic.Int64
	killAt := int64(total / 6)
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for completed.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		c.ByID(primary).Kill()
	}()

	type result struct {
		status int
		body   string
		want   string
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := &http.Client{}
			for i := 0; i < perWorker; i++ {
				reqBody := inferBodies[(w*perWorker+i)%len(inferBodies)]
				st, _, data := do(t, cl, http.MethodPost, ts.URL+"/v1/infer", reqBody)
				results[w*perWorker+i] = result{status: st, body: string(data), want: string(oracle[reqBody])}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	<-killed

	bad := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			bad++
			if bad <= 3 {
				t.Errorf("request %d: status %d: %s", i, r.status, r.body)
			}
			continue
		}
		if r.body != r.want {
			bad++
			if bad <= 3 {
				t.Errorf("request %d: body mismatch:\ngot  %s\nwant %s", i, r.body, r.want)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d of %d requests failed or returned wrong bytes across the replica kill", bad, total)
	}

	// Metrics reconciliation against the load generator's own counts: the
	// probe request plus every load request answered 200 (and nothing else),
	// each exactly one successful upstream try, and every failed try is
	// accounted for by exactly one retry.
	issued := uint64(total + 1)
	stats := g.StatsSnapshot()
	if got := stats.Requests[http.StatusOK]; got != issued {
		t.Errorf("srcldagw requests_total{200} = %d, want %d", got, issued)
	}
	for code, n := range stats.Requests {
		if code != http.StatusOK && n != 0 {
			t.Errorf("unexpected client-facing status %d × %d", code, n)
		}
	}
	var ok200, failedTries uint64
	for _, bi := range g.BackendInfos() {
		for code, n := range bi.ByCode {
			if code == "200" {
				ok200 += n
			} else {
				failedTries += n
			}
		}
	}
	if ok200 != issued {
		t.Errorf("sum of backend 200 tries = %d, want %d", ok200, issued)
	}
	if stats.Retries != failedTries {
		t.Errorf("retries_total = %d, want %d (one retry per failed try)", stats.Retries, failedTries)
	}
	if stats.Hedges != 0 {
		t.Errorf("hedges_total = %d, want 0 (hedging disabled)", stats.Hedges)
	}
	if len(stats.Shed) != 0 {
		t.Errorf("requests shed: %v, want none", stats.Shed)
	}

	// The exposition endpoint must carry the reconciled counter.
	st, _, metrics := do(t, client, http.MethodGet, ts.URL+"/metrics", "")
	if st != http.StatusOK {
		t.Fatalf("/metrics: status %d", st)
	}
	wantLine := fmt.Sprintf("srcldagw_requests_total{code=\"200\"} %d", issued)
	if !strings.Contains(string(metrics), wantLine) {
		t.Errorf("/metrics missing %q", wantLine)
	}
}

// TestGatewayHangingReplica: a replica that accepts connections and never
// answers. Hedging keeps client latency bounded from the first affected
// request, and the active prober ejects the replica from routing; when the
// hang clears, it returns.
func TestGatewayHangingReplica(t *testing.T) {
	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 3})
	g, ts := newGateway(t, c, func(cfg *gateway.Config) {
		cfg.HedgeAfter = 50 * time.Millisecond
		cfg.TryTimeout = 5 * time.Second
		cfg.RetryBudgetRatio = 1
		cfg.RetryBudgetBurst = 100
	})
	client := &http.Client{}

	_, hdr, _ := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
	victim := c.ByID(hdr.Get("X-Backend"))
	if victim == nil {
		t.Fatalf("unknown X-Backend %q", hdr.Get("X-Backend"))
	}
	victim.SetHang(true)

	// Every request during the hang must finish far below TryTimeout — the
	// hedge, not the timeout, is what bounds tail latency.
	for i := 0; i < 5; i++ {
		start := time.Now()
		st, h, body := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[i%len(inferBodies)])
		if st != http.StatusOK {
			t.Fatalf("request %d during hang: status %d: %s", i, st, body)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("request %d during hang took %v; hedging should bound it well under TryTimeout", i, d)
		}
		if h.Get("X-Backend") == victim.ID() {
			t.Fatalf("request %d answered by the hung replica", i)
		}
	}
	if s := g.StatsSnapshot(); s.Hedges == 0 {
		t.Error("hedges_total = 0; hung primary should have triggered hedges")
	}

	// The active prober must converge on unhealthy (its probe times out).
	waitFor(t, 5*time.Second, "hung replica marked unhealthy", func() bool {
		for _, bi := range g.BackendInfos() {
			if bi.ID == victim.ID() {
				return !bi.Healthy
			}
		}
		return false
	})
	// Once unhealthy it is out of the candidate set: requests answer without
	// hedging delay.
	st, h, _ := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
	if st != http.StatusOK || h.Get("X-Backend") == victim.ID() {
		t.Fatalf("post-ejection request: status %d backend %q", st, h.Get("X-Backend"))
	}

	victim.SetHang(false)
	waitFor(t, 5*time.Second, "recovered replica marked healthy", func() bool {
		for _, bi := range g.BackendInfos() {
			if bi.ID == victim.ID() {
				return bi.Healthy
			}
		}
		return false
	})
}

// TestGateway503Storm: a replica that stays green on /readyz while failing
// every request — the gray failure only passive ejection can catch. The
// storming replica is ejected after the threshold, clients never see an
// error, and the replica rejoins once the storm clears.
func TestGateway503Storm(t *testing.T) {
	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 3})
	g, ts := newGateway(t, c, func(cfg *gateway.Config) {
		cfg.EjectThreshold = 3
		cfg.EjectBackoff = 100 * time.Millisecond
		cfg.EjectMaxBackoff = 400 * time.Millisecond
		cfg.RetryBudgetRatio = 1
		cfg.RetryBudgetBurst = 100
	})
	client := &http.Client{}

	_, hdr, _ := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
	storming := c.ByID(hdr.Get("X-Backend"))
	if storming == nil {
		t.Fatalf("unknown X-Backend %q", hdr.Get("X-Backend"))
	}
	storming.SetStorm(true)

	for i := 0; i < 20; i++ {
		st, _, body := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[i%len(inferBodies)])
		if st != http.StatusOK {
			t.Fatalf("request %d during storm: status %d: %s", i, st, body)
		}
	}
	var victimInfo *gateway.BackendInfo
	for _, bi := range g.BackendInfos() {
		if bi.ID == storming.ID() {
			bi := bi
			victimInfo = &bi
		}
	}
	if victimInfo == nil {
		t.Fatal("storming backend missing from BackendInfos")
	}
	if victimInfo.Ejections == 0 {
		t.Errorf("storming backend was never passively ejected (503 tries: %d)", victimInfo.ByCode["503"])
	}
	if victimInfo.ByCode["503"] < 3 {
		t.Errorf("storming backend saw %d 503 tries, want >= eject threshold", victimInfo.ByCode["503"])
	}
	if !victimInfo.Healthy {
		t.Error("storm must not affect the active health verdict; that is the point of the gray failure")
	}
	if s := g.StatsSnapshot(); s.Retries == 0 {
		t.Error("retries_total = 0; storm failovers should be retries")
	}

	// Storm over: the next post-backoff trial request succeeds and the
	// replica takes its traffic back.
	storming.SetStorm(false)
	waitFor(t, 5*time.Second, "storming replica taking traffic again", func() bool {
		st, h, _ := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
		return st == http.StatusOK && h.Get("X-Backend") == storming.ID()
	})
}

// TestGatewaySlowStart: a replica that is up but not ready must receive no
// traffic until its /readyz flips — the initial synchronous probe round
// means not even the first request hits it.
func TestGatewaySlowStart(t *testing.T) {
	models := make([]string, 8)
	for i := range models {
		models[i] = fmt.Sprintf("m%d", i)
	}
	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 2, ExtraModels: models})
	slow := c.Replicas[1]
	slow.SetReady(false)

	g, ts := newGateway(t, c, nil)
	client := &http.Client{}

	for _, m := range models {
		st, h, body := do(t, client, http.MethodPost, ts.URL+"/v1/models/"+m+"/infer", inferBodies[0])
		if st != http.StatusOK {
			t.Fatalf("model %s during slow start: status %d: %s", m, st, body)
		}
		if h.Get("X-Backend") == slow.ID() {
			t.Fatalf("model %s routed to the not-ready replica", m)
		}
	}

	slow.SetReady(true)
	waitFor(t, 5*time.Second, "slow replica marked healthy", func() bool {
		for _, bi := range g.BackendInfos() {
			if bi.ID == slow.ID() {
				return bi.Healthy
			}
		}
		return false
	})
	// With both replicas in the ring, the 8 model keys must spread: at least
	// one has the recovered replica as its primary.
	landed := false
	for _, m := range models {
		st, h, _ := do(t, client, http.MethodPost, ts.URL+"/v1/models/"+m+"/infer", inferBodies[0])
		if st == http.StatusOK && h.Get("X-Backend") == slow.ID() {
			landed = true
			break
		}
	}
	if !landed {
		t.Error("no model key routed to the recovered replica; ring is not spreading keys")
	}
}

// TestGatewaySheddingAndLimits: overload and outage degrade gracefully —
// 429 with Retry-After for a rate-limited tenant, 503 with Retry-After when
// no backend is available or every try is exhausted — and the full
// gateway+cluster lifecycle leaks no goroutines.
func TestGatewaySheddingAndLimits(t *testing.T) {
	gatewaytest.TrainBundle(t) // warm the shared bundle before the baseline
	base := runtime.NumGoroutine()

	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 2})
	g, ts := newGateway(t, c, func(cfg *gateway.Config) {
		cfg.TenantRate = 1
		cfg.TenantBurst = 3
		cfg.EjectThreshold = -1 // isolate shedding behavior from ejection
	})
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}

	// A burst from one tenant: the bucket admits its burst, then sheds with
	// a well-formed Retry-After. A second tenant is unaffected.
	admitted, shed := 0, 0
	for i := 0; i < 10; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", strings.NewReader(inferBodies[0]))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", "acme")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			shed++
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("tenant burst request %d: status %d", i, resp.StatusCode)
		}
	}
	if admitted == 0 || shed == 0 {
		t.Fatalf("tenant burst: %d admitted, %d shed; want both nonzero", admitted, shed)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", strings.NewReader(inferBodies[0]))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "other")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second tenant shed alongside the first: status %d", resp.StatusCode)
	}

	// Every backend storming: tries exhaust and the terminal 503 passes
	// through with a Retry-After.
	for _, r := range c.Replicas {
		r.SetStorm(true)
	}
	st, h, _ := do(t, client, http.MethodGet, ts.URL+"/v1/topics", "")
	if st != http.StatusServiceUnavailable || h.Get("Retry-After") == "" {
		t.Fatalf("all-storm request: status %d Retry-After %q, want 503 with Retry-After", st, h.Get("Retry-After"))
	}

	// Every backend not ready: once the prober notices, requests shed with
	// "no backend" rather than burning tries.
	for _, r := range c.Replicas {
		r.SetStorm(false)
		r.SetReady(false)
	}
	waitFor(t, 5*time.Second, "all backends marked unhealthy", func() bool {
		for _, bi := range g.BackendInfos() {
			if bi.Healthy {
				return false
			}
		}
		return true
	})
	st, h, _ = do(t, client, http.MethodGet, ts.URL+"/v1/topics", "")
	if st != http.StatusServiceUnavailable || h.Get("Retry-After") == "" {
		t.Fatalf("no-backend request: status %d Retry-After %q, want 503 with Retry-After", st, h.Get("Retry-After"))
	}
	stats := g.StatsSnapshot()
	for _, reason := range []string{"rate_limit", "upstream_exhausted", "no_backend"} {
		if stats.Shed[reason] == 0 {
			t.Errorf("shed reason %q never recorded: %v", reason, stats.Shed)
		}
	}

	// Tear the whole tier down and verify the goroutine count returns to the
	// pre-cluster baseline (network teardown is asynchronous; poll).
	ts.Close()
	g.Close()
	for _, r := range c.Replicas {
		r.Close()
	}
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before lifecycle, %d after teardown", base, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayRequestIDPropagation: a caller-supplied X-Request-Id survives
// the hop to the replica and back; an absent one is minted.
func TestGatewayRequestIDPropagation(t *testing.T) {
	c := gatewaytest.New(t, gatewaytest.Options{Replicas: 2})
	_, ts := newGateway(t, c, nil)
	client := &http.Client{}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", strings.NewReader(inferBodies[0]))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-e2e-propagation-1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-e2e-propagation-1" {
		t.Errorf("X-Request-Id = %q, want the caller's ID echoed", got)
	}
	if resp.Header.Get("X-Backend") == "" {
		t.Error("X-Backend header missing from proxied response")
	}

	st, h, _ := do(t, client, http.MethodPost, ts.URL+"/v1/infer", inferBodies[0])
	if st != http.StatusOK || h.Get("X-Request-Id") == "" {
		t.Errorf("minted X-Request-Id missing: status %d headers %v", st, h)
	}
}
