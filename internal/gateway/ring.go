package gateway

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// defaultVNodes is the number of virtual nodes each backend contributes to
// the ring. 160 points per backend keeps the largest key-share within a few
// percent of fair for realistic replica counts while ring construction and
// lookup stay trivially cheap.
const defaultVNodes = 160

// ring is a consistent-hash ring over backend indices: each backend owns
// vnodes points on a 64-bit circle, and a key's preference order is the
// sequence of distinct backends met walking clockwise from the key's hash.
// The ring is immutable after construction — rebuilding on a membership
// change is how adds and removals happen, and consistency guarantees that a
// rebuild only remaps the fair share of keys touching the changed backend.
type ring struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int
}

// hashKey is the ring's hash: FNV-1a 64 through a splitmix64 finalizer.
// Raw FNV-1a is not enough here — its final byte feeds the hash through a
// single xor-multiply, so similar keys ("model-1", "model-2", ...) land
// within a few multiples of the FNV prime (~2^40) of each other, which is
// microscopic on a 2^64 circle; whole families of keys then collapse onto
// the same vnode arcs and the ring's balance collapses with them (measured:
// one of 8 backends owning 0 of 4000 sequential keys). The finalizer's
// full-width avalanche restores uniform dispersion. Not cryptographic —
// keys are operator-chosen model names, not attacker input worth defending
// with a keyed hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring over backend IDs (index i in every order result
// refers to ids[i]). vnodes <= 0 takes defaultVNodes.
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{n: len(ids), points: make([]ringPoint, 0, len(ids)*vnodes)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", id, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between different backends' vnodes are possible if
		// absurdly unlikely; break the tie on the index so the ring — and
		// therefore routing — is a pure function of the membership list.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// order returns every backend index in the key's preference order: clockwise
// from hash(key), first occurrence of each backend wins. Deterministic for a
// fixed ring; the full order (rather than just the primary) is what retry,
// hedging and bounded-load spill walk.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	seen := make([]bool, r.n)
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points) && len(out) < r.n; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// boundedCap is the bounded-load ceiling (consistent hashing with bounded
// loads, Mirrokni/Thorup/Zadimoghaddam 2017): no backend may hold more than
// ceil(factor * (totalInflight+1) / n) in-flight requests, so one hot model
// spills to its next ring neighbors instead of pinning a single replica.
// factor < 1 is clamped to 1 (cap below the mean is unsatisfiable).
func boundedCap(totalInflight, n int, factor float64) int {
	if n <= 0 {
		return 0
	}
	if factor < 1 {
		factor = 1
	}
	c := int(math.Ceil(factor * float64(totalInflight+1) / float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

// pickBounded returns the position in order of the first backend whose
// in-flight count is under the bounded-load cap, or -1 when every backend is
// at or over it (the caller falls back to the plain preference order).
// inflight reports a backend index's current in-flight count; total is the
// gateway-wide in-flight count and n the number of eligible backends.
func pickBounded(order []int, inflight func(int) int, total, n int, factor float64) int {
	cap := boundedCap(total, n, factor)
	for pos, idx := range order {
		if inflight(idx) < cap {
			return pos
		}
	}
	return -1
}
