// Package gatewaytest stands up in-process srcldad replica clusters with
// injectable faults — abrupt kill, hang, 503 storm, delayed readiness — so
// the gateway's failover behavior is tested end to end against the real
// registry stack (real HTTP, real dispatcher, real bundles) instead of
// scripted stubs. Faults are the interesting part of a load balancer; this
// package makes each one a single method call in a test.
package gatewaytest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sourcelda"
	"sourcelda/internal/gateway"
	"sourcelda/internal/obs"
	"sourcelda/internal/registry"
)

var (
	bundleOnce sync.Once
	bundleData []byte
	bundleErr  error
)

// TrainBundle fits the shared two-topic test model (the school/baseball
// corpus used across the repo's serving tests) and returns it serialized as
// a bundle. Training runs once per process; every cluster decodes its own
// copies, so replicas never share model state.
func TrainBundle(tb testing.TB) []byte {
	tb.Helper()
	bundleOnce.Do(func() {
		b := sourcelda.NewCorpusBuilder()
		for i := 0; i < 10; i++ {
			b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
			b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
		}
		b.AddKnowledgeArticle("School Supplies",
			strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
		b.AddKnowledgeArticle("Baseball",
			strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
		c, k, err := b.Build()
		if err != nil {
			bundleErr = err
			return
		}
		m, err := sourcelda.Fit(c, k, sourcelda.Options{
			Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
			Iterations: 60,
			Seed:       7,
		})
		if err != nil {
			bundleErr = err
			return
		}
		var buf bytes.Buffer
		if err := sourcelda.SaveBundle(&buf, m); err != nil {
			bundleErr = err
			return
		}
		bundleData = buf.Bytes()
	})
	if bundleErr != nil {
		tb.Fatal(bundleErr)
	}
	return bundleData
}

// Options configures a cluster.
type Options struct {
	// Replicas is the replica count (default 3).
	Replicas int
	// Registry is the base replica configuration; per-replica identity
	// (BackendID), the default model name and a discard logger are filled
	// in. Shrink QueueSize here to make saturation tests cheap.
	Registry registry.Config
	// ExtraModels are additional model names each replica loads (all decode
	// the same bundle), for tests that need keys spread across the ring.
	ExtraModels []string
}

// Cluster is a set of in-process replicas.
type Cluster struct {
	Replicas []*Replica
}

// New boots the cluster: every replica is a real registry with the test
// bundle loaded, served over a real HTTP listener behind the fault layer.
func New(t testing.TB, opts Options) *Cluster {
	t.Helper()
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	bundle := TrainBundle(t)
	c := &Cluster{}
	for i := 0; i < opts.Replicas; i++ {
		c.Replicas = append(c.Replicas, newReplica(t, i, bundle, opts))
	}
	return c
}

// Specs returns the gateway backend specs for every replica, in order.
func (c *Cluster) Specs() []gateway.BackendSpec {
	specs := make([]gateway.BackendSpec, len(c.Replicas))
	for i, r := range c.Replicas {
		specs[i] = gateway.BackendSpec{ID: r.ID(), URL: r.URL()}
	}
	return specs
}

// ByID returns the replica with the given backend ID, or nil.
func (c *Cluster) ByID(id string) *Replica {
	for _, r := range c.Replicas {
		if r.ID() == id {
			return r
		}
	}
	return nil
}

// Replica is one in-process srcldad replica plus its fault switches.
type Replica struct {
	id  string
	reg *registry.Registry
	srv *httptest.Server

	mu          sync.Mutex
	hang        bool
	hangRelease chan struct{}
	storm       bool
	notReady    bool
	closed      bool
}

func newReplica(t testing.TB, i int, bundle []byte, opts Options) *Replica {
	t.Helper()
	cfg := opts.Registry
	if cfg.DefaultModel == "" {
		cfg.DefaultModel = "default"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	cfg.BackendID = fmt.Sprintf("replica-%d", i)
	reg := registry.New(cfg)
	load := func(name string) {
		m, err := sourcelda.LoadBundle(bytes.NewReader(bundle))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Load(name, "v1", m); err != nil {
			m.Close()
			t.Fatal(err)
		}
	}
	load(cfg.DefaultModel)
	for _, name := range opts.ExtraModels {
		load(name)
	}
	r := &Replica{id: cfg.BackendID, reg: reg}
	r.srv = httptest.NewServer(r.faults(registry.NewServer(reg)))
	t.Cleanup(r.Close)
	return r
}

// ID is the replica's backend identity (matches its X-Backend header).
func (r *Replica) ID() string { return r.id }

// URL is the replica's base URL.
func (r *Replica) URL() string { return r.srv.URL }

// Registry exposes the underlying registry for direct assertions.
func (r *Replica) Registry() *registry.Registry { return r.reg }

// faults wraps the real replica handler with the injection layer. Each
// fault models a distinct production failure:
//
//   - hang: the replica accepts the connection and never answers — every
//     path including /readyz, so active probes see the silence too.
//   - storm: every API request answers 503, but /readyz and /healthz stay
//     green — the gray failure only passive ejection can catch.
//   - notReady: /readyz answers 503 while the API works — a replica still
//     warming up, which routing must skip without erroring.
func (r *Replica) faults(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		hang, storm, notReady := r.hang, r.storm, r.notReady
		release := r.hangRelease
		r.mu.Unlock()
		switch {
		case hang:
			select {
			case <-release:
				// Released after the fact: answer retryably so a client try
				// that somehow outlived the hang never sees a bogus 200.
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"hang released"}`+"\n")
			case <-req.Context().Done():
			}
			return
		case storm && req.URL.Path != "/readyz" && req.URL.Path != "/healthz":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"injected 503 storm"}`+"\n")
			return
		case notReady && req.URL.Path == "/readyz":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"not ready (injected)"}`+"\n")
			return
		}
		inner.ServeHTTP(w, req)
	})
}

// SetHang toggles the hang fault. Turning it off releases every request
// currently parked in the fault layer.
func (r *Replica) SetHang(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if on && !r.hang {
		r.hang = true
		r.hangRelease = make(chan struct{})
	} else if !on && r.hang {
		r.hang = false
		close(r.hangRelease)
	}
}

// SetStorm toggles the 503-storm fault.
func (r *Replica) SetStorm(on bool) {
	r.mu.Lock()
	r.storm = on
	r.mu.Unlock()
}

// SetReady toggles readiness: SetReady(false) makes /readyz answer 503
// while the API keeps working.
func (r *Replica) SetReady(ready bool) {
	r.mu.Lock()
	r.notReady = !ready
	r.mu.Unlock()
}

// Kill severs every open connection and stops the listener — the abrupt
// process death, not a graceful drain: in-flight requests die mid-response
// and new connections are refused.
func (r *Replica) Kill() {
	r.SetHang(false)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.srv.CloseClientConnections()
	r.srv.Close()
	r.reg.Close()
}

// Close shuts the replica down gracefully; registered as test cleanup and
// safe after Kill.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.srv.Close()
	r.reg.Close()
}
