package gateway

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"sourcelda/internal/obs"
)

// handleMetrics renders the gateway's Prometheus exposition: gateway-level
// request counters and latency, then per-backend try counters, health and
// ejection state, then process runtime gauges. Metric fields are documented
// in docs/API.md; docs/OPERATIONS.md derives the alerting rules from them.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.WritePrometheus(w)
}

// WritePrometheus writes the /metrics body.
func (g *Gateway) WritePrometheus(w io.Writer) {
	stats := g.StatsSnapshot()
	infos := g.BackendInfos()

	fmt.Fprintf(w, "# HELP srcldagw_backends Configured backends.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backends gauge\n")
	fmt.Fprintf(w, "srcldagw_backends %d\n", len(infos))
	avail := 0
	for _, bi := range infos {
		if bi.Healthy && !bi.Ejected {
			avail++
		}
	}
	fmt.Fprintf(w, "# HELP srcldagw_backends_available Backends currently eligible for routed traffic (healthy and not ejected).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backends_available gauge\n")
	fmt.Fprintf(w, "srcldagw_backends_available %d\n", avail)
	fmt.Fprintf(w, "# HELP srcldagw_uptime_seconds Seconds since the gateway started.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_uptime_seconds gauge\n")
	fmt.Fprintf(w, "srcldagw_uptime_seconds %g\n", time.Since(g.start).Seconds())

	fmt.Fprintf(w, "# HELP srcldagw_requests_total Client-facing proxied requests by terminal HTTP status.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_requests_total counter\n")
	codes := make([]int, 0, len(stats.Requests))
	for code := range stats.Requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "srcldagw_requests_total{code=\"%d\"} %d\n", code, stats.Requests[code])
	}
	fmt.Fprintf(w, "# HELP srcldagw_requests_shed_total Requests rejected without a successful upstream response, by reason (rate_limit, no_backend, upstream_exhausted).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_requests_shed_total counter\n")
	reasons := make([]string, 0, len(stats.Shed))
	for reason := range stats.Shed {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(w, "srcldagw_requests_shed_total{reason=%q} %d\n", reason, stats.Shed[reason])
	}
	fmt.Fprintf(w, "# HELP srcldagw_retries_total Extra upstream tries launched after a retryable failure.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_retries_total counter\n")
	fmt.Fprintf(w, "srcldagw_retries_total %d\n", stats.Retries)
	fmt.Fprintf(w, "# HELP srcldagw_hedges_total Extra upstream tries launched by the tail-latency hedge timer.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_hedges_total counter\n")
	fmt.Fprintf(w, "srcldagw_hedges_total %d\n", stats.Hedges)

	fmt.Fprintf(w, "# HELP srcldagw_request_latency_seconds End-to-end client request latency through the gateway.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_request_latency_seconds histogram\n")
	stats.Latency.WritePrometheus(w, "srcldagw_request_latency_seconds", "")
	fmt.Fprintf(w, "# HELP srcldagw_stage_latency_seconds Gateway-overhead portion of request latency (total minus winning upstream try).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_stage_latency_seconds histogram\n")
	stats.GatewayStage.WritePrometheus(w, "srcldagw_stage_latency_seconds",
		fmt.Sprintf("stage=%q", obs.StageGateway.String()))

	fmt.Fprintf(w, "# HELP srcldagw_backend_requests_total Upstream tries by backend and terminal code (HTTP status, or error/timeout/canceled for transport outcomes).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_requests_total counter\n")
	for _, bi := range infos {
		tryCodes := make([]string, 0, len(bi.ByCode))
		for code := range bi.ByCode {
			tryCodes = append(tryCodes, code)
		}
		sort.Strings(tryCodes)
		for _, code := range tryCodes {
			fmt.Fprintf(w, "srcldagw_backend_requests_total{backend=%q,code=%q} %d\n", bi.ID, code, bi.ByCode[code])
		}
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_ejections_total Passive outlier ejections of the backend.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_ejections_total counter\n")
	for _, bi := range infos {
		fmt.Fprintf(w, "srcldagw_backend_ejections_total{backend=%q} %d\n", bi.ID, bi.Ejections)
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_probe_failures_total Failed active health probes of the backend.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_probe_failures_total counter\n")
	for _, bi := range infos {
		fmt.Fprintf(w, "srcldagw_backend_probe_failures_total{backend=%q} %d\n", bi.ID, bi.ProbeFailures)
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_healthy Active health-probe verdict (1 healthy, 0 unhealthy).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_healthy gauge\n")
	for _, bi := range infos {
		v := 0
		if bi.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "srcldagw_backend_healthy{backend=%q} %d\n", bi.ID, v)
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_ejected Passive-ejection state (1 inside an ejection window).\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_ejected gauge\n")
	for _, bi := range infos {
		v := 0
		if bi.Ejected {
			v = 1
		}
		fmt.Fprintf(w, "srcldagw_backend_ejected{backend=%q} %d\n", bi.ID, v)
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_inflight Upstream tries currently in flight to the backend.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_inflight gauge\n")
	for _, bi := range infos {
		fmt.Fprintf(w, "srcldagw_backend_inflight{backend=%q} %d\n", bi.ID, bi.Inflight)
	}
	fmt.Fprintf(w, "# HELP srcldagw_backend_latency_seconds Upstream try latency by backend.\n")
	fmt.Fprintf(w, "# TYPE srcldagw_backend_latency_seconds histogram\n")
	for _, bi := range infos {
		bi.Latency.WritePrometheus(w, "srcldagw_backend_latency_seconds", fmt.Sprintf("backend=%q", bi.ID))
	}
	obs.WriteRuntimeMetrics(w, "srcldagw", 0)
}
