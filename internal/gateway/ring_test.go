package gateway

import (
	"fmt"
	"testing"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%d", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("model-%d", i)
	}
	return out
}

// TestRingDeterministic: routing is a pure function of the membership list —
// two independently built rings agree on every key's full preference order,
// and each order is a permutation of the backends.
func TestRingDeterministic(t *testing.T) {
	a := newRing(ids(7), 0)
	b := newRing(ids(7), 0)
	for _, k := range keys(500) {
		oa, ob := a.order(k), b.order(k)
		if len(oa) != 7 {
			t.Fatalf("order(%q) has %d entries, want 7", k, len(oa))
		}
		seen := make([]bool, 7)
		for i, idx := range oa {
			if idx < 0 || idx >= 7 || seen[idx] {
				t.Fatalf("order(%q) = %v is not a permutation", k, oa)
			}
			seen[idx] = true
			if ob[i] != idx {
				t.Fatalf("independently built rings disagree on %q: %v vs %v", k, oa, ob)
			}
		}
	}
}

// TestRingBalance: with 160 vnodes no backend's primary key share strays
// wildly from fair.
func TestRingBalance(t *testing.T) {
	const n, nkeys = 8, 4000
	r := newRing(ids(n), 0)
	counts := make([]int, n)
	for _, k := range keys(nkeys) {
		counts[r.order(k)[0]]++
	}
	fair := nkeys / n
	for i, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Errorf("backend %d owns %d of %d keys (fair %d); ring badly unbalanced: %v", i, c, nkeys, fair, counts)
		}
	}
}

// TestRingRemapOnMembershipChange is the consistency property the ring
// exists for: removing a backend remaps only the keys it owned, and adding
// one remaps roughly a fair share — never a wholesale reshuffle.
func TestRingRemapOnMembershipChange(t *testing.T) {
	const n, nkeys = 10, 4000
	full := newRing(ids(n), 0)
	primaries := make(map[string]int, nkeys)
	for _, k := range keys(nkeys) {
		primaries[k] = full.order(k)[0]
	}

	// Remove the last backend (same ids, shorter list, so indices align).
	smaller := newRing(ids(n-1), 0)
	for k, was := range primaries {
		now := smaller.order(k)[0]
		if was != n-1 && now != was {
			t.Fatalf("key %q moved from surviving backend %d to %d on an unrelated removal", k, was, now)
		}
		if was == n-1 && now == n-1 {
			t.Fatalf("key %q still maps to the removed backend", k)
		}
	}

	// Add an 11th backend: only keys it captures may move, and it should
	// capture about 1/11th of them.
	larger := newRing(ids(n+1), 0)
	moved := 0
	for k, was := range primaries {
		now := larger.order(k)[0]
		if now != was {
			moved++
			if now != n {
				t.Fatalf("key %q moved to backend %d, not the added backend, on an add", k, now)
			}
		}
	}
	fair := nkeys / (n + 1)
	if moved > 2*fair {
		t.Errorf("adding one backend moved %d of %d keys; want <= ~2x fair share (%d)", moved, nkeys, fair)
	}
	if moved == 0 {
		t.Error("adding a backend moved no keys; the new backend would idle")
	}
}

// TestBoundedCap: the cap is never below the per-backend mean nor below 1,
// and sub-1 factors clamp rather than starve.
func TestBoundedCap(t *testing.T) {
	cases := []struct {
		total, n int
		factor   float64
		want     int
	}{
		{0, 3, 1.25, 1}, // idle: everyone may take one
		{9, 3, 1.25, 5}, // ceil(1.25*10/3)
		{9, 3, 1.0, 4},  // exact mean
		{100, 1, 1.25, 127},
		{10, 3, 0.5, 4}, // factor clamps to 1: ceil(11/3)
	}
	for _, c := range cases {
		if got := boundedCap(c.total, c.n, c.factor); got != c.want {
			t.Errorf("boundedCap(%d,%d,%g) = %d, want %d", c.total, c.n, c.factor, got, c.want)
		}
	}
	if got := boundedCap(5, 0, 1.25); got != 0 {
		t.Errorf("boundedCap with n=0 = %d, want 0", got)
	}
}

// TestPickBounded: the pick never lands on a backend at or over cap, and
// reports exhaustion rather than overloading one.
func TestPickBounded(t *testing.T) {
	order := []int{2, 0, 1}
	load := map[int]int{2: 5, 0: 1, 1: 0}
	inflight := func(i int) int { return load[i] }
	// total 6 over 3 backends, factor 1.25: cap = ceil(1.25*7/3) = 3.
	if pos := pickBounded(order, inflight, 6, 3, 1.25); pos != 1 {
		t.Errorf("pickBounded skipped-over-cap pick = %d, want 1 (backend 0)", pos)
	}
	// total 3, factor 1: cap = ceil(4/3) = 2, and every backend holds 2.
	load = map[int]int{2: 2, 0: 2, 1: 2}
	if pos := pickBounded(order, inflight, 3, 3, 1.0); pos != -1 {
		t.Errorf("pickBounded with all at cap = %d, want -1", pos)
	}
	// Cap property under random-ish loads: whatever it picks is under cap.
	for total := 0; total < 50; total++ {
		load = map[int]int{0: total / 2, 1: total / 3, 2: total - total/2 - total/3}
		if pos := pickBounded(order, inflight, total, 3, 1.25); pos != -1 {
			c := boundedCap(total, 3, 1.25)
			if got := load[order[pos]]; got >= c {
				t.Fatalf("total %d: picked backend with %d in flight, cap %d", total, got, c)
			}
		}
	}
}
