package gateway

import (
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sourcelda/internal/obs"
)

// backend is one replica's live state inside the gateway: identity, the two
// availability signals (active health probes and passive outlier ejection),
// the in-flight counter bounded-load routing reads, and per-backend metrics.
type backend struct {
	id  string
	url *url.URL

	// healthy is the active signal: the last /readyz probe's verdict. When
	// active checking is disabled it is pinned true and only passive
	// ejection gates the backend.
	healthy  atomic.Bool
	inflight atomic.Int64

	// mu guards the passive-ejection state machine. consecErrs counts
	// consecutive try failures; at the threshold the backend is ejected
	// until ejectedUntil. backoff doubles on every consecutive ejection (a
	// backend that fails its post-backoff trial request re-ejects on that
	// single failure) and resets only on a success, so a dead replica costs
	// one trial request per backoff window, not a threshold's worth.
	mu           sync.Mutex
	consecErrs   int
	ejectedUntil time.Time
	backoff      time.Duration

	// mmu guards the per-backend counters; latency is lock-free.
	mmu           sync.Mutex
	byCode        map[string]uint64
	ejections     uint64
	probeFailures uint64
	latency       *obs.Histogram
}

func newBackend(id string, u *url.URL) *backend {
	return &backend{
		id:      id,
		url:     u,
		byCode:  make(map[string]uint64),
		latency: obs.NewHistogram(nil),
	}
}

// available reports whether the backend may receive routed traffic now:
// actively healthy and not inside a passive-ejection window.
func (b *backend) available(now time.Time) bool {
	if !b.healthy.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.ejectedUntil)
}

// ejected reports whether the backend is inside a passive-ejection window.
func (b *backend) ejected(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.ejectedUntil)
}

// noteSuccess resets the passive-ejection state: the backend answered, so
// the error streak and the ejection backoff both start over.
func (b *backend) noteSuccess() {
	b.mu.Lock()
	b.consecErrs = 0
	b.backoff = 0
	b.mu.Unlock()
}

// noteFailure records one try failure and decides ejection: returns true
// when this failure ejects the backend. threshold <= 0 disables passive
// ejection. A backend with a live backoff (ejected before, no success
// since) re-ejects on its first post-backoff failure — that single trial
// request is the passive re-probe.
func (b *backend) noteFailure(now time.Time, threshold int, base, max time.Duration) bool {
	if threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecErrs++
	if b.backoff == 0 && b.consecErrs < threshold {
		return false
	}
	next := base
	if b.backoff > 0 {
		next = b.backoff * 2
		if next > max {
			next = max
		}
	}
	b.backoff = next
	b.ejectedUntil = now.Add(next)
	b.consecErrs = 0
	b.mmu.Lock()
	b.ejections++
	b.mmu.Unlock()
	return true
}

// recordTry counts one upstream try's terminal code ("200", "503", ... or
// the sentinel codes "error"/"timeout"/"canceled") and its latency.
func (b *backend) recordTry(code string, d time.Duration) {
	b.latency.Observe(d.Seconds())
	b.mmu.Lock()
	b.byCode[code]++
	b.mmu.Unlock()
}

// recordProbeFailure counts one failed active health probe.
func (b *backend) recordProbeFailure() {
	b.mmu.Lock()
	b.probeFailures++
	b.mmu.Unlock()
}

// codeLabel renders an HTTP status for the per-backend code label.
func codeLabel(status int) string { return strconv.Itoa(status) }

// BackendInfo is a point-in-time snapshot of one backend's state, for tests
// and the gateway's health endpoint.
type BackendInfo struct {
	ID  string
	URL string
	// Healthy is the active /readyz verdict; Ejected reports a live passive
	// ejection window. A backend receives routed traffic only when Healthy
	// and not Ejected.
	Healthy  bool
	Ejected  bool
	Inflight int
	// ByCode counts upstream tries by terminal code; transport-level
	// outcomes use the sentinel codes "error", "timeout" and "canceled".
	ByCode        map[string]uint64
	Ejections     uint64
	ProbeFailures uint64
	Latency       obs.HistogramSnapshot
}

func (b *backend) info(now time.Time) BackendInfo {
	bi := BackendInfo{
		ID:       b.id,
		URL:      b.url.String(),
		Healthy:  b.healthy.Load(),
		Ejected:  b.ejected(now),
		Inflight: int(b.inflight.Load()),
		Latency:  b.latency.Snapshot(),
	}
	b.mmu.Lock()
	bi.ByCode = make(map[string]uint64, len(b.byCode))
	for c, n := range b.byCode {
		bi.ByCode[c] = n
	}
	bi.Ejections = b.ejections
	bi.ProbeFailures = b.probeFailures
	b.mmu.Unlock()
	return bi
}
