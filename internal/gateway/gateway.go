package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sourcelda/internal/obs"
)

// Errors the gateway reports on its own behalf (upstream errors pass
// through with the replica's body).
var (
	// ErrNoBackends means the configuration named no backends.
	ErrNoBackends = errors.New("gateway: no backends configured")
)

// BackendSpec names one replica: a stable ID (the consistent-hash identity —
// keep it fixed across restarts and address changes so the ring does not
// reshuffle) and its base URL.
type BackendSpec struct {
	ID  string
	URL string
}

// Config tunes the gateway. Zero values take the documented defaults.
type Config struct {
	// Backends are the srcldad replicas fronted by this gateway.
	Backends []BackendSpec
	// DefaultModel is the model name the unnamed routes (/v1/infer,
	// /v1/topics) are routed by (default "default"). It must match the
	// replicas' -default-model.
	DefaultModel string
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 160).
	VNodes int
	// LoadFactor is the bounded-load factor c: no backend holds more than
	// ceil(c * (inflight+1) / available) in-flight gateway requests before
	// the ring spills a hot model to its next neighbor (default 1.25).
	LoadFactor float64
	// HealthInterval is the active /readyz probe period (default 2s;
	// negative disables active checking — passive ejection still applies).
	HealthInterval time.Duration
	// ProbeTimeout bounds one active probe (default 1s).
	ProbeTimeout time.Duration
	// EjectThreshold is the consecutive try-failure count that passively
	// ejects a backend (default 5; negative disables passive ejection).
	// Ejection lasts EjectBackoff (default 1s), doubling per consecutive
	// ejection up to EjectMaxBackoff (default 30s); one trial request per
	// backoff window re-probes the backend.
	EjectThreshold  int
	EjectBackoff    time.Duration
	EjectMaxBackoff time.Duration
	// TryTimeout bounds one upstream try (default 10s); MaxTries caps the
	// total tries per request — first attempt, retries and hedges together
	// (default 3, additionally capped by the backend count).
	TryTimeout time.Duration
	MaxTries   int
	// RetryBudgetRatio is the retry allowance earned per client request and
	// RetryBudgetBurst the bucket cap (defaults 0.2 and 10): retries plus
	// hedges never exceed ~20% of request traffic, so a failing fleet sees
	// shed load, not a retry storm.
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// HedgeAfter launches a tail-latency hedge to the next backend when the
	// current try has not answered after this long (default 0: disabled).
	// Safe for this API because inference is deterministic and
	// side-effect-free; first response wins, the loser is canceled.
	HedgeAfter time.Duration
	// TenantRate and TenantBurst configure per-tenant token-bucket admission
	// control (requests/second and burst; default 0: unlimited). TenantHeader
	// names the tenant header (default "X-Tenant"); requests without it are
	// keyed by client IP.
	TenantRate   float64
	TenantBurst  float64
	TenantHeader string
	// MaxBody caps a client request body (default 1 MiB); MaxRespBody caps a
	// buffered upstream response (default 64 MiB — responses are buffered so
	// a replica dying mid-response is retried instead of truncating the
	// client's stream).
	MaxBody     int64
	MaxRespBody int64
	// Logger receives structured events (probe transitions, ejections,
	// access logs); nil discards. SlowRequest mirrors srcldad's flag
	// (default 1s; negative disables).
	Logger      *slog.Logger
	SlowRequest time.Duration
	// Transport overrides the upstream round tripper (tests); nil builds a
	// pooled http.Transport.
	Transport http.RoundTripper
}

func (c *Config) applyDefaults() {
	if c.DefaultModel == "" {
		c.DefaultModel = "default"
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EjectThreshold == 0 {
		c.EjectThreshold = 5
	}
	if c.EjectBackoff <= 0 {
		c.EjectBackoff = time.Second
	}
	if c.EjectMaxBackoff <= 0 {
		c.EjectMaxBackoff = 30 * time.Second
	}
	if c.TryTimeout <= 0 {
		c.TryTimeout = 10 * time.Second
	}
	if c.MaxTries <= 0 {
		c.MaxTries = 3
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetRatio < 0 {
		c.RetryBudgetRatio = 0
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 10
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxRespBody <= 0 {
		c.MaxRespBody = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
}

// Gateway fronts N srcldad replicas: consistent-hash routing of model names
// to replicas with bounded load, health-checked backends with passive
// outlier ejection, per-try timeouts under a retry budget with optional
// hedging, and per-tenant admission control. It implements http.Handler;
// see docs/OPERATIONS.md for the operational story.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	mux      *http.ServeMux
	client   *http.Client
	budget   *retryBudget
	tenants  *tenantLimiter
	inflight atomic.Int64
	start    time.Time

	metrics gwMetrics

	closeOnce  sync.Once
	stopHealth context.CancelFunc
	healthDone chan struct{}
}

// gwMetrics are the gateway-level counters (per-backend counters live on
// each backend).
type gwMetrics struct {
	mu      sync.Mutex
	byCode  map[int]uint64
	shed    map[string]uint64
	retries uint64
	hedges  uint64

	latency *obs.Histogram // end-to-end client request latency
	stage   *obs.Histogram // gateway-overhead portion (obs.StageGateway)
}

// New builds the gateway and, unless active checking is disabled, runs one
// synchronous probe round so routing starts with real readiness instead of
// optimism (a replica still loading its models directory never sees a
// request).
func New(cfg Config) (*Gateway, error) {
	cfg.applyDefaults()
	if len(cfg.Backends) == 0 {
		return nil, ErrNoBackends
	}
	ids := make([]string, len(cfg.Backends))
	backends := make([]*backend, len(cfg.Backends))
	seen := make(map[string]bool, len(cfg.Backends))
	for i, spec := range cfg.Backends {
		if spec.ID == "" {
			return nil, fmt.Errorf("gateway: backend %d has an empty ID", i)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("gateway: duplicate backend ID %q", spec.ID)
		}
		seen[spec.ID] = true
		u, err := url.Parse(spec.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q has invalid URL %q (want http(s)://host[:port])", spec.ID, spec.URL)
		}
		u.Path = strings.TrimSuffix(u.Path, "/")
		ids[i] = spec.ID
		backends[i] = newBackend(spec.ID, u)
	}
	g := &Gateway{
		cfg:      cfg,
		backends: backends,
		ring:     newRing(ids, cfg.VNodes),
		mux:      http.NewServeMux(),
		client:   &http.Client{Transport: cfg.Transport},
		budget:   newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		tenants:  newTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		start:    time.Now(),
		metrics: gwMetrics{
			byCode:  make(map[int]uint64),
			shed:    make(map[string]uint64),
			latency: obs.NewHistogram(nil),
			stage:   obs.NewHistogram(nil),
		},
		healthDone: make(chan struct{}),
	}
	g.mux.HandleFunc("POST /v1/infer", g.handleRouted)
	g.mux.HandleFunc("POST /v1/models/{name}/infer", g.handleRouted)
	g.mux.HandleFunc("GET /v1/topics", g.handleRouted)
	g.mux.HandleFunc("GET /v1/models/{name}/topics", g.handleRouted)
	g.mux.HandleFunc("GET /v1/models", g.handleModels)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /readyz", g.handleReady)

	ctx, cancel := context.WithCancel(context.Background())
	g.stopHealth = cancel
	if cfg.HealthInterval > 0 {
		g.probeAll(ctx)
		go g.healthLoop(ctx)
	} else {
		// No active signal: every backend starts healthy and only passive
		// ejection gates it.
		for _, b := range g.backends {
			b.healthy.Store(true)
		}
		close(g.healthDone)
	}
	return g, nil
}

// Close stops the health checker and releases idle upstream connections.
// In-flight requests finish normally (their tries hold their own contexts).
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		g.stopHealth()
		<-g.healthDone
		if tr, ok := g.cfg.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	})
}

// gwWriter is the per-request tracking struct: status capture, the trace
// span, and the proxy facts the access log reports. One allocation per
// request, mirroring the registry's statusWriter.
type gwWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	trace  obs.Trace

	backend  string
	model    string
	tries    int
	retries  int
	hedges   int
	upstream time.Duration
}

func (gw *gwWriter) WriteHeader(code int) {
	if !gw.wrote {
		gw.status = code
		gw.wrote = true
	}
	gw.ResponseWriter.WriteHeader(code)
}

func (gw *gwWriter) Write(p []byte) (int, error) {
	gw.wrote = true
	return gw.ResponseWriter.Write(p)
}

// ServeHTTP is the tracing middleware: resolve or mint an X-Request-Id,
// echo it before the handler runs, and emit one access-log event per
// request with the routing breakdown (backend, tries, retries, hedges,
// upstream vs gateway time).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-Id")
	if !obs.ValidRequestID(id) {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	gw := &gwWriter{ResponseWriter: w, status: http.StatusOK}
	gw.trace.ID = id
	start := time.Now()
	g.mux.ServeHTTP(gw, r)
	dur := time.Since(start)

	slow := g.cfg.SlowRequest
	isSlow := slow > 0 && dur >= slow
	level, msg := slog.LevelInfo, "request"
	if isSlow {
		level, msg = slog.LevelWarn, "slow request"
	}
	lg := g.cfg.Logger
	if !lg.Enabled(r.Context(), level) {
		return
	}
	attrs := []any{
		"request_id", id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", gw.status,
		"duration_ms", durMillis(dur),
	}
	if gw.tries > 0 {
		attrs = append(attrs,
			"backend", gw.backend,
			"model", gw.model,
			"tries", gw.tries,
			"retries", gw.retries,
			"hedges", gw.hedges,
			"upstream_ms", durMillis(gw.upstream),
			"gateway_ms", durMillis(gw.trace.Stage(obs.StageGateway)),
		)
	}
	if isSlow {
		attrs = append(attrs, "threshold_ms", durMillis(slow))
	}
	lg.Log(r.Context(), level, msg, attrs...)
}

func durMillis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// handleRouted proxies the model-keyed routes: consistent-hash the model
// name to a replica preference order and run the try loop over it.
func (g *Gateway) handleRouted(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("name")
	if model == "" {
		model = g.cfg.DefaultModel
	}
	if gw, ok := w.(*gwWriter); ok {
		gw.model = model
	}
	g.proxy(w, r, g.candidates(model))
}

// handleModels proxies the un-keyed listing route to the least-loaded
// available backend (every replica answers it; no ring key applies).
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	cands := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.available(now) {
			cands = append(cands, b)
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].inflight.Load() < cands[j-1].inflight.Load(); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	g.proxy(w, r, cands)
}

// candidates returns the try order for a model key: the ring's preference
// order restricted to available backends, partitioned so backends under the
// bounded-load cap come first (a hot model spills to ring neighbors instead
// of pinning its primary). When every backend is unhealthy or ejected, the
// healthy-but-ejected ones are returned as trial candidates — the passive
// re-probe path — so a fully-ejected pool degrades to best-effort rather
// than a hard outage.
func (g *Gateway) candidates(key string) []*backend {
	order := g.ring.order(key)
	now := time.Now()
	idxAvail := make([]int, 0, len(order))
	for _, i := range order {
		if g.backends[i].available(now) {
			idxAvail = append(idxAvail, i)
		}
	}
	if len(idxAvail) == 0 {
		out := make([]*backend, 0, len(order))
		for _, i := range order {
			if g.backends[i].healthy.Load() {
				out = append(out, g.backends[i])
			}
		}
		return out
	}
	cap := boundedCap(int(g.inflight.Load()), len(idxAvail), g.cfg.LoadFactor)
	under := make([]*backend, 0, len(idxAvail))
	var over []*backend
	for _, i := range idxAvail {
		b := g.backends[i]
		if int(b.inflight.Load()) < cap {
			under = append(under, b)
		} else {
			over = append(over, b)
		}
	}
	return append(under, over...)
}

// upstream is one try's outcome. code is the per-backend metric label:
// the HTTP status, or a transport sentinel ("error", "timeout",
// "canceled" — canceled means the gateway itself abandoned the try, which
// must never count against the backend).
type upstream struct {
	b       *backend
	status  int
	header  http.Header
	body    []byte
	err     error
	code    string
	dur     time.Duration
	hedged  bool
	started time.Time
}

// retryableStatus reports whether an upstream status may be retried on
// another replica: transient server-side conditions only. 503 is the
// replicas' load-shed signal, so a retry elsewhere is exactly right; 4xx
// are the client's fault and identical everywhere.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// proxy runs the full try loop for one client request over the candidate
// backends: admission control, body buffering, per-try timeouts, budgeted
// retries on retryable failures, budgeted hedging on latency, passive
// ejection bookkeeping, and response copy-out. Every terminal path records
// the client-facing status exactly once.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, cands []*backend) {
	startReq := time.Now()
	gw, _ := w.(*gwWriter)
	status := g.serveProxy(w, r, gw, cands, startReq)
	total := time.Since(startReq)
	var up time.Duration
	if gw != nil {
		up = gw.upstream
	}
	overhead := total - up
	if overhead < 0 {
		overhead = 0
	}
	if gw != nil {
		gw.trace.Add(obs.StageGateway, overhead)
	}
	g.metrics.latency.Observe(total.Seconds())
	g.metrics.stage.Observe(overhead.Seconds())
	g.metrics.mu.Lock()
	g.metrics.byCode[status]++
	if gw != nil {
		g.metrics.retries += uint64(gw.retries)
		g.metrics.hedges += uint64(gw.hedges)
	}
	g.metrics.mu.Unlock()
}

func (g *Gateway) serveProxy(w http.ResponseWriter, r *http.Request, gw *gwWriter, cands []*backend, startReq time.Time) int {
	// Admission control rejects before the body is read: a rate-limited
	// tenant must not cost body buffering, let alone an upstream try.
	if ok, after := g.tenants.admit(g.tenant(r), startReq); !ok {
		g.recordShed("rate_limit")
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(after)))
		return writeError(w, gw, http.StatusTooManyRequests, "tenant rate limit exceeded")
	}

	// Buffer the request body so a retry or hedge can resend it.
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
		if err != nil {
			var maxErr *http.MaxBytesError
			switch {
			case errors.As(err, &maxErr):
				return writeError(w, gw, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			case r.Context().Err() != nil:
				return writeError(w, gw, 499, "client closed request")
			default:
				return writeError(w, gw, http.StatusBadRequest, "failed to read request body")
			}
		}
	}

	if len(cands) == 0 {
		g.recordShed("no_backend")
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(g.cfg.HealthInterval)))
		return writeError(w, gw, http.StatusServiceUnavailable, "no available backend")
	}
	if len(cands) > g.cfg.MaxTries {
		cands = cands[:g.cfg.MaxTries]
	}
	g.budget.earn()

	uri := r.URL.RequestURI()
	ctype := r.Header.Get("Content-Type")
	reqID := ""
	if gw != nil {
		reqID = gw.trace.ID
	}

	ch := make(chan upstream, len(cands))
	cancels := make([]context.CancelFunc, 0, len(cands))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	next := 0
	launch := func(hedged bool) bool {
		if next >= len(cands) {
			return false
		}
		b := cands[next]
		next++
		tctx, cancel := context.WithTimeout(r.Context(), g.cfg.TryTimeout)
		cancels = append(cancels, cancel)
		go func() {
			u := g.try(tctx, b, r.Method, uri, ctype, reqID, body)
			u.hedged = hedged
			ch <- u
		}()
		return true
	}
	launch(false)
	pending := 1

	var hedgeTimer *time.Timer
	var hedgeCh <-chan time.Time
	if g.cfg.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(g.cfg.HedgeAfter)
		hedgeCh = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	var last upstream
	for pending > 0 {
		select {
		case u := <-ch:
			pending--
			if u.err == nil && !retryableStatus(u.status) {
				// Terminal response — 2xx, or a 4xx that is the client's
				// fault and identical on every replica. Either way the
				// backend answered coherently.
				u.b.noteSuccess()
				return g.writeUpstream(w, gw, u)
			}
			last = u
			g.noteTryFailure(u)
			if r.Context().Err() != nil {
				return writeError(w, gw, 499, "client closed request")
			}
			if g.budget.spend() {
				if launch(false) {
					pending++
					if gw != nil {
						gw.retries++
					}
				}
			}
		case <-hedgeCh:
			if g.budget.spend() && launch(true) {
				pending++
				if gw != nil {
					gw.hedges++
				}
				hedgeTimer.Reset(g.cfg.HedgeAfter)
			} else {
				hedgeCh = nil
			}
		}
	}

	// Every try failed. Pass a coherent upstream response through (its body
	// names the real condition); map transport-level failures to gateway
	// errors.
	switch {
	case last.status != 0:
		if last.status == http.StatusServiceUnavailable {
			g.recordShed("upstream_exhausted")
			w.Header().Set("Retry-After", "1")
		}
		return g.writeUpstream(w, gw, last)
	case last.code == "timeout":
		return writeError(w, gw, http.StatusGatewayTimeout,
			fmt.Sprintf("upstream timeout after %d tries", next))
	default:
		return writeError(w, gw, http.StatusBadGateway,
			fmt.Sprintf("upstream unreachable after %d tries", next))
	}
}

// noteTryFailure applies one failed try to the backend's passive-ejection
// state. Canceled tries (hedge losers, client disconnects) are neutral —
// the gateway abandoned them; the backend did nothing wrong.
func (g *Gateway) noteTryFailure(u upstream) {
	if u.code == "canceled" {
		return
	}
	if u.b.noteFailure(time.Now(), g.cfg.EjectThreshold, g.cfg.EjectBackoff, g.cfg.EjectMaxBackoff) {
		g.cfg.Logger.Warn("backend ejected",
			"backend", u.b.id, "code", u.code, "consecutive_failures", g.cfg.EjectThreshold)
	}
}

// try performs one upstream attempt: bounded by its context, response fully
// buffered (a replica dying mid-body becomes a retryable error, never a
// truncated client response), per-backend accounting on every path.
func (g *Gateway) try(ctx context.Context, b *backend, method, uri, ctype, reqID string, body []byte) upstream {
	g.inflight.Add(1)
	b.inflight.Add(1)
	defer g.inflight.Add(-1)
	defer b.inflight.Add(-1)

	u := upstream{b: b, started: time.Now()}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url.String()+uri, rd)
	if err != nil {
		u.err, u.code = err, "error"
		b.recordTry(u.code, 0)
		return u
	}
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		u.dur = time.Since(u.started)
		u.err, u.code = err, transportCode(ctx, err)
		b.recordTry(u.code, u.dur)
		return u
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBody+1))
	resp.Body.Close()
	u.dur = time.Since(u.started)
	if rerr != nil {
		u.err, u.code = rerr, transportCode(ctx, rerr)
		b.recordTry(u.code, u.dur)
		return u
	}
	if int64(len(data)) > g.cfg.MaxRespBody {
		u.err = fmt.Errorf("upstream response exceeds %d bytes", g.cfg.MaxRespBody)
		u.code = "error"
		b.recordTry(u.code, u.dur)
		return u
	}
	u.status = resp.StatusCode
	u.header = resp.Header
	u.body = data
	u.code = codeLabel(resp.StatusCode)
	b.recordTry(u.code, u.dur)
	return u
}

// transportCode classifies a transport error for the per-backend code
// label: "timeout" (the try's own deadline), "canceled" (the gateway or
// client abandoned the try — never the backend's fault), or "error".
func transportCode(ctx context.Context, err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled) || ctx.Err() == context.Canceled:
		return "canceled"
	default:
		return "error"
	}
}

// writeUpstream copies a buffered upstream response to the client:
// status, body, Content-Type, and the replica's X-Backend identity.
func (g *Gateway) writeUpstream(w http.ResponseWriter, gw *gwWriter, u upstream) int {
	if gw != nil {
		gw.backend = u.b.id
		gw.upstream = u.dur
		gw.tries++
	}
	if ct := u.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := u.header.Get("X-Backend"); id != "" {
		w.Header().Set("X-Backend", id)
	} else {
		w.Header().Set("X-Backend", u.b.id)
	}
	w.WriteHeader(u.status)
	w.Write(u.body)
	return u.status
}

// tenant resolves the admission-control key: the tenant header when
// present, otherwise the client IP (per-IP fairness for anonymous traffic).
func (g *Gateway) tenant(r *http.Request) string {
	if t := r.Header.Get(g.cfg.TenantHeader); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (g *Gateway) recordShed(reason string) {
	g.metrics.mu.Lock()
	g.metrics.shed[reason]++
	g.metrics.mu.Unlock()
}

// writeError renders a gateway-origin JSON error, echoing the request ID
// like the replicas do.
func writeError(w http.ResponseWriter, gw *gwWriter, status int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := fmt.Sprintf("{\"error\":%q", msg)
	if gw != nil && gw.trace.ID != "" {
		body += fmt.Sprintf(",\"request_id\":%q", gw.trace.ID)
	}
	body += "}\n"
	io.WriteString(w, body)
	return status
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	avail := 0
	for _, b := range g.backends {
		if b.available(now) {
			avail++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "{\"status\":\"ok\",\"backends\":%d,\"available\":%d,\"uptime_seconds\":%g}\n",
		len(g.backends), avail, time.Since(g.start).Seconds())
}

// handleReady mirrors the replicas' readiness semantics one level up: the
// gateway is ready once at least one backend can take traffic.
func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	avail := 0
	for _, b := range g.backends {
		if b.available(now) {
			avail++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	state := "ready"
	if avail == 0 {
		status = http.StatusServiceUnavailable
		state = "unavailable"
	}
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"status\":%q,\"backends\":%d,\"available\":%d}\n", state, len(g.backends), avail)
}

// BackendInfos snapshots every backend's state, in configuration order.
func (g *Gateway) BackendInfos() []BackendInfo {
	now := time.Now()
	out := make([]BackendInfo, len(g.backends))
	for i, b := range g.backends {
		out[i] = b.info(now)
	}
	return out
}

// Stats is a point-in-time copy of the gateway-level counters.
type Stats struct {
	// Requests counts client-facing proxied requests by terminal status.
	Requests map[int]uint64
	// Shed counts rejected requests by reason: "rate_limit" (admission
	// control), "no_backend" (nothing available), "upstream_exhausted"
	// (every try answered 503).
	Shed map[string]uint64
	// Retries and Hedges count extra upstream tries by trigger.
	Retries uint64
	Hedges  uint64
	// Latency is end-to-end client latency; GatewayStage is the portion
	// spent in the gateway itself (total minus upstream).
	Latency      obs.HistogramSnapshot
	GatewayStage obs.HistogramSnapshot
}

// StatsSnapshot copies the gateway-level counters.
func (g *Gateway) StatsSnapshot() Stats {
	s := Stats{
		Latency:      g.metrics.latency.Snapshot(),
		GatewayStage: g.metrics.stage.Snapshot(),
	}
	g.metrics.mu.Lock()
	s.Requests = make(map[int]uint64, len(g.metrics.byCode))
	for c, n := range g.metrics.byCode {
		s.Requests[c] = n
	}
	s.Shed = make(map[string]uint64, len(g.metrics.shed))
	for r, n := range g.metrics.shed {
		s.Shed[r] = n
	}
	s.Retries = g.metrics.retries
	s.Hedges = g.metrics.hedges
	g.metrics.mu.Unlock()
	return s
}
