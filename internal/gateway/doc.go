// Package gateway is the horizontal serving tier in front of srcldad
// replicas: one stateless process that makes N single-box model servers
// look like a single, larger, fault-tolerant one.
//
// Routing is consistent hashing with bounded loads: a model name hashes to
// a deterministic replica preference order (so each replica's OS page cache
// and per-model dispatcher stay hot for the models it owns), and a bounded
// in-flight cap spills a hot model to its ring neighbors instead of pinning
// one replica. Availability is decided by two independent signals — active
// /readyz probes (which catch hangs) and passive consecutive-failure
// ejection with exponential backoff (which catches fast failures like
// connection refusals and 5xx storms). Failures are retried on the next
// replica in preference order under a retry budget, optionally hedged on
// latency; per-tenant token buckets shed abusive load before it costs an
// upstream try.
//
// The package is exercised end to end by the fault-injection suite in
// gateway_test.go against in-process replica clusters from the companion
// gatewaytest package. Command srcldagw is the thin CLI wrapper.
package gateway
