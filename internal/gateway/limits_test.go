package gateway

import (
	"fmt"
	"net/url"
	"testing"
	"time"
)

func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.2, 2)
	// Starts full: two spends pass, the third is refused.
	if !rb.spend() || !rb.spend() {
		t.Fatal("fresh budget refused its burst")
	}
	if rb.spend() {
		t.Fatal("empty budget granted a spend")
	}
	// Five requests earn one token at ratio 0.2.
	for i := 0; i < 4; i++ {
		rb.earn()
		if rb.spend() {
			t.Fatalf("budget granted a spend after only %d earns at ratio 0.2", i+1)
		}
	}
	rb.earn()
	if !rb.spend() {
		t.Fatal("budget refused a spend after earning a full token")
	}
	// Earning never exceeds the burst cap.
	for i := 0; i < 100; i++ {
		rb.earn()
	}
	if !rb.spend() || !rb.spend() {
		t.Fatal("budget below burst after heavy earning")
	}
	if rb.spend() {
		t.Fatal("budget exceeded its burst cap")
	}
}

func TestTenantLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(2, 3)

	// Burst admits, then sheds with a sane Retry-After; an untouched tenant
	// is unaffected.
	for i := 0; i < 3; i++ {
		if ok, _ := l.admit("acme", now); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, after := l.admit("acme", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if s := RetryAfterSeconds(after); s < 1 {
		t.Fatalf("Retry-After %ds, want >= 1", s)
	}
	if ok, _ := l.admit("globex", now); !ok {
		t.Fatal("second tenant rejected because of the first's burst")
	}

	// Refill: at 2 req/s, one second buys two more requests.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.admit("acme", now); !ok {
			t.Fatalf("refilled request %d rejected", i)
		}
	}
	if ok, _ := l.admit("acme", now); ok {
		t.Fatal("request beyond refill admitted")
	}

	// A nil limiter (rate 0) admits everything.
	var none *tenantLimiter
	if ok, _ := none.admit("anyone", now); !ok {
		t.Fatal("nil limiter rejected a request")
	}
	if newTenantLimiter(0, 5) != nil {
		t.Fatal("zero rate should disable the limiter")
	}
}

// TestTenantLimiterBounded: the bucket map stops growing at maxTenants —
// stale buckets are evicted first, and when every bucket is live, unknown
// tenants share the overflow bucket instead of growing the map.
func TestTenantLimiterBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(1, 2)
	for i := 0; i < maxTenants; i++ {
		l.admit(fmt.Sprintf("tenant-%d", i), now)
	}
	if len(l.buckets) != maxTenants {
		t.Fatalf("bucket map has %d entries, want %d", len(l.buckets), maxTenants)
	}
	// All live: a new tenant lands in the overflow bucket, map does not grow.
	l.admit("fresh-1", now)
	if len(l.buckets) > maxTenants+1 {
		t.Fatalf("bucket map grew past the cap: %d", len(l.buckets))
	}
	// Everyone idle long enough to refill: stale eviction makes room again.
	now = now.Add(time.Hour)
	l.admit("fresh-2", now)
	if len(l.buckets) >= maxTenants {
		t.Fatalf("stale buckets not evicted: %d entries", len(l.buckets))
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestBackendEjection covers the passive state machine directly: threshold
// ejection, exponential backoff growth with re-ejection on a single trial
// failure, reset on success, and the disabled mode.
func TestBackendEjection(t *testing.T) {
	b := newBackend("r0", mustURL(t, "http://127.0.0.1:1"))
	b.healthy.Store(true)
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if b.noteFailure(now, 3, time.Second, 8*time.Second) {
			t.Fatalf("ejected after %d failures, threshold 3", i+1)
		}
	}
	if !b.noteFailure(now, 3, time.Second, 8*time.Second) {
		t.Fatal("not ejected at threshold")
	}
	if b.available(now) || !b.ejected(now) {
		t.Fatal("backend available during ejection window")
	}
	if !b.available(now.Add(1001 * time.Millisecond)) {
		t.Fatal("backend unavailable after the window expired")
	}

	// One trial failure after the window re-ejects immediately, with a
	// doubled window.
	trial := now.Add(2 * time.Second)
	if !b.noteFailure(trial, 3, time.Second, 8*time.Second) {
		t.Fatal("trial failure did not re-eject")
	}
	if b.available(trial.Add(1500 * time.Millisecond)) {
		t.Fatal("second window did not double")
	}
	if !b.available(trial.Add(2001 * time.Millisecond)) {
		t.Fatal("second window longer than doubled backoff")
	}

	// Backoff is capped and a success resets everything.
	at := trial
	for i := 0; i < 10; i++ {
		at = at.Add(time.Minute)
		b.noteFailure(at, 3, time.Second, 8*time.Second)
	}
	if !b.available(at.Add(8001 * time.Millisecond)) {
		t.Fatal("backoff exceeded its cap")
	}
	b.noteSuccess()
	for i := 0; i < 2; i++ {
		if b.noteFailure(at, 3, time.Second, 8*time.Second) {
			t.Fatal("post-success failure ejected below threshold; success did not reset state")
		}
	}

	// Disabled threshold never ejects.
	d := newBackend("r1", mustURL(t, "http://127.0.0.1:1"))
	d.healthy.Store(true)
	for i := 0; i < 100; i++ {
		if d.noteFailure(now, -1, time.Second, 8*time.Second) {
			t.Fatal("disabled passive ejection still ejected")
		}
	}
}

func mustURL(t *testing.T, s string) *url.URL {
	t.Helper()
	u, err := url.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}
